//! Saving and restoring trained predictors.
//!
//! Parameter order is defined by each model's `parameters()` and is
//! deterministic for a fixed architecture, so checkpoints restore exactly
//! into a freshly constructed model with the same configuration.
//!
//! Since checkpoint format v2, [`save_predictor`] also writes a metadata
//! entry recording the architecture (model name, input channels, input
//! size). [`load_predictor`] — and the serving layer's model registry —
//! reject checkpoints whose metadata disagrees with the target model, so a
//! wrong file fails with an attributable message instead of a bare
//! parameter-count mismatch deep in the tensor list. Checkpoints written
//! before the metadata entry existed (format v1) still load.

use crate::model::IrPredictor;
use lmmir_tensor::{io, Result, Tensor, TensorError};
use std::path::Path;

/// Name prefix of the metadata entry; the model name rides in the entry
/// name itself (entry names are the only string-typed field in the format).
const META_PREFIX: &str = "meta.";

/// Architecture metadata stored alongside checkpoint parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Model name as reported by [`IrPredictor::name`].
    pub model: String,
    /// Input image channels the model expects.
    pub input_channels: usize,
    /// Square input size the model was configured for.
    pub input_size: usize,
}

impl CheckpointMeta {
    /// Reads the metadata off a live model.
    #[must_use]
    pub fn of(model: &dyn IrPredictor) -> Self {
        CheckpointMeta {
            model: model.name().to_string(),
            input_channels: model.input_channels(),
            input_size: model.input_size(),
        }
    }

    /// Serializes to a checkpoint entry. Channel count and input size are
    /// exact in `f32` for every realistic architecture (both ≪ 2²⁴).
    fn entry(&self) -> (String, Tensor) {
        let payload = vec![self.input_channels as f32, self.input_size as f32];
        (
            format!("{META_PREFIX}{}", self.model),
            Tensor::from_vec(payload, &[2]).expect("meta payload is rank 1"),
        )
    }

    /// Parses a checkpoint entry previously written by [`Self::entry`].
    fn parse(name: &str, t: &Tensor) -> Result<Self> {
        let model = name
            .strip_prefix(META_PREFIX)
            .ok_or_else(|| TensorError::Io(format!("not a meta entry: '{name}'")))?;
        let data = t.data();
        if t.dims() != [2] || data.iter().any(|v| *v < 0.0 || v.fract() != 0.0) {
            return Err(TensorError::Io(format!(
                "malformed checkpoint meta entry '{name}' (dims {:?})",
                t.dims()
            )));
        }
        Ok(CheckpointMeta {
            model: model.to_string(),
            input_channels: data[0] as usize,
            input_size: data[1] as usize,
        })
    }
}

/// A named tensor as stored in a checkpoint file.
pub type NamedTensor = (String, Tensor);

/// Splits loaded entries into the optional metadata and the parameter list
/// (order preserved).
///
/// # Errors
///
/// Returns [`TensorError::Io`] for a malformed or duplicated meta entry.
pub fn split_meta(entries: Vec<NamedTensor>) -> Result<(Option<CheckpointMeta>, Vec<NamedTensor>)> {
    let mut meta = None;
    let mut params = Vec::with_capacity(entries.len());
    for (name, t) in entries {
        if name.starts_with(META_PREFIX) {
            if meta.is_some() {
                return Err(TensorError::Io(
                    "checkpoint has more than one meta entry".to_string(),
                ));
            }
            meta = Some(CheckpointMeta::parse(&name, &t)?);
        } else {
            params.push((name, t));
        }
    }
    Ok((meta, params))
}

/// Reads only the metadata of a checkpoint file (`None` for pre-v2 files
/// without one).
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the file cannot be read or is malformed.
pub fn load_meta(path: impl AsRef<Path>) -> Result<Option<CheckpointMeta>> {
    let (meta, _) = split_meta(io::load(path)?)?;
    Ok(meta)
}

/// Serializes a predictor's parameters (plus architecture metadata) to the
/// binary checkpoint format.
///
/// # Errors
///
/// Returns [`TensorError::Io`] on filesystem failure.
pub fn save_predictor(model: &dyn IrPredictor, path: impl AsRef<Path>) -> Result<()> {
    let meta = CheckpointMeta::of(model);
    let entries: Vec<(String, Tensor)> = std::iter::once(meta.entry())
        .chain(
            model
                .parameters()
                .iter()
                .enumerate()
                .map(|(i, p)| (format!("param.{i}"), p.to_tensor())),
        )
        .collect();
    io::save(path, &entries)
}

/// Restores a predictor's parameters from a checkpoint file.
///
/// When the checkpoint carries metadata, the target model's name, input
/// channel count and input size must match; a v1 checkpoint without
/// metadata is accepted and validated by parameter count/shape alone.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the file cannot be read, the metadata
/// names a different architecture, or the parameter count differs; and
/// [`TensorError::ShapeMismatch`] when a tensor's shape disagrees with the
/// model architecture.
pub fn load_predictor(model: &dyn IrPredictor, path: impl AsRef<Path>) -> Result<()> {
    let (meta, entries) = split_meta(io::load(path)?)?;
    if let Some(meta) = meta {
        let target = CheckpointMeta::of(model);
        if meta != target {
            return Err(TensorError::Io(format!(
                "checkpoint architecture mismatch: file was saved from \
                 '{}' ({} channels, {} px) but the target model is \
                 '{}' ({} channels, {} px)",
                meta.model,
                meta.input_channels,
                meta.input_size,
                target.model,
                target.input_channels,
                target.input_size,
            )));
        }
    }
    restore_parameters(model, entries)
}

/// Assigns already-loaded (and meta-stripped) parameter entries into a
/// model, validating count and shapes first — the restore half of
/// [`load_predictor`], exposed so callers that already parsed a checkpoint
/// (e.g. the serving registry, which reads meta and weights from one
/// `io::load`) need not read the file twice.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the parameter count differs and
/// [`TensorError::ShapeMismatch`] when a tensor's shape disagrees with the
/// model architecture.
pub fn restore_parameters(model: &dyn IrPredictor, entries: Vec<NamedTensor>) -> Result<()> {
    let params = model.parameters();
    if entries.len() != params.len() {
        return Err(TensorError::Io(format!(
            "checkpoint has {} tensors but model has {} parameters",
            entries.len(),
            params.len()
        )));
    }
    for (p, (_, t)) in params.iter().zip(&entries) {
        if p.value().dims() != t.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: p.value().dims().to_vec(),
                rhs: t.dims().to_vec(),
                op: "load_predictor",
            });
        }
    }
    for (p, (_, t)) in params.iter().zip(entries) {
        p.set_value(t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{iredge, irpnet};
    use crate::model::IrPredictor;
    use lmmir_tensor::{Tensor, Var};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lmmir_core_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trip() {
        let a = iredge(16, 1);
        let path = tmp("iredge.lmmt");
        save_predictor(&a, &path).unwrap();
        let b = iredge(16, 2); // different seed => different weights
        let x = Var::constant(Tensor::ones(&[1, 3, 16, 16]));
        a.set_training(false);
        b.set_training(false);
        let ya = a.forward(&x, None).unwrap().to_tensor();
        let yb_before = b.forward(&x, None).unwrap().to_tensor();
        assert_ne!(ya.data(), yb_before.data());
        load_predictor(&b, &path).unwrap();
        let yb_after = b.forward(&x, None).unwrap().to_tensor();
        assert_eq!(ya.data(), yb_after.data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture_by_name() {
        let a = iredge(16, 1);
        let path = tmp("mismatch.lmmt");
        save_predictor(&a, &path).unwrap();
        let other = irpnet(16, 1);
        let err = load_predictor(&other, &path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("IREDGe") && msg.contains("IRPnet"),
            "mismatch error should name both architectures: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_same_model_different_input_size() {
        let a = iredge(16, 1);
        let path = tmp("sizes.lmmt");
        save_predictor(&a, &path).unwrap();
        // Same architecture family and parameter shapes — only the
        // configured input size differs; the meta check catches it where
        // shape validation could not.
        let other = iredge(32, 1);
        let err = load_predictor(&other, &path).unwrap_err();
        assert!(err.to_string().contains("16 px"), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_round_trips_through_file() {
        let a = iredge(16, 1);
        let path = tmp("meta.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path).unwrap().expect("v2 checkpoints have meta");
        assert_eq!(meta, CheckpointMeta::of(&a));
        assert_eq!(meta.model, "IREDGe");
        assert_eq!(meta.input_channels, 3);
        assert_eq!(meta.input_size, 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_checkpoint_without_meta_still_loads() {
        let a = iredge(16, 1);
        // Write the raw parameter entries only, as a pre-meta writer did.
        let entries: Vec<(String, Tensor)> = a
            .parameters()
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("param.{i}"), p.to_tensor()))
            .collect();
        let path = tmp("legacy.lmmt");
        io::save(&path, &entries).unwrap();
        let b = iredge(16, 2);
        load_predictor(&b, &path).unwrap();
        assert!(load_meta(&path).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_meta_entry_is_rejected() {
        let entries = vec![(
            "meta.IREDGe".to_string(),
            Tensor::from_vec(vec![3.5, 16.0], &[2]).unwrap(),
        )];
        assert!(split_meta(entries).is_err(), "fractional channel count");
        let entries = vec![
            (
                "meta.A".to_string(),
                Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
            ),
            (
                "meta.B".to_string(),
                Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
            ),
        ];
        assert!(split_meta(entries).is_err(), "duplicate meta entries");
    }

    #[test]
    fn load_missing_file_errors() {
        let a = iredge(16, 1);
        assert!(load_predictor(&a, tmp("does_not_exist.lmmt")).is_err());
    }
}
