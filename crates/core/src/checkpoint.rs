//! Saving and restoring trained predictors.
//!
//! Parameter order is defined by each model's `parameters()` and is
//! deterministic for a fixed architecture, so checkpoints restore exactly
//! into a freshly constructed model with the same configuration.
//!
//! Since checkpoint format v2, [`save_predictor`] also writes a metadata
//! entry recording the architecture (model name, input channels, input
//! size). [`load_predictor`] — and the serving layer's model registry —
//! reject checkpoints whose metadata disagrees with the target model, so a
//! wrong file fails with an attributable message instead of a bare
//! parameter-count mismatch deep in the tensor list. Checkpoints written
//! before the metadata entry existed (format v1) still load.
//!
//! Format v3 additionally serializes the **full model configuration** (an
//! [`ArchConfig`]: widths, stem kernel, per-family extras, seed) into one
//! family-specific `config.*` entry when the saved model carries one
//! (`config.lmmir`, `config.dynamic`, `config.cfirstnet`, `config.waca`).
//! A v3 reader reconstructs the exact trained architecture instead of
//! assuming the `quick()` widths — which is what makes paper-scale
//! checkpoints servable. The entry names and payload layouts live with
//! [`ArchSpec`] in the `arch` module, so this module has no per-family
//! branches. v1 and v2 files still load: the config entry is simply absent
//! and [`CheckpointMeta::config`] is `None`.
//!
//! Format v4 additionally records **post-training int8 weight scales**: one
//! `quant.{i}` entry (a rank-1 scale vector, one scale per output channel)
//! for every rank-2/rank-4 `param.{i}`. Weights themselves stay `f32` on
//! the wire — the scales make the quantization *reproducible and
//! verifiable*: they are computed by [`lmmir_tensor::quant::weight_scales`],
//! the same function the layers use when [`IrPredictor::quantize`] runs, so
//! the loader cross-checks each stored vector bitwise against a
//! recomputation from the adjacent parameter tensor and rejects tampered or
//! corrupted files. v1–v3 files simply have no `quant.` entries and still
//! load (quantized serving of an old file computes the identical scales at
//! load time).

use crate::arch::{ArchConfig, ArchSpec};
use crate::dynamic::DynamicIrConfig;
use crate::model::{IrPredictor, LmmIrConfig};
use lmmir_tensor::quant::weight_scales;
use lmmir_tensor::{io, Result, Tensor, TensorError};
use std::collections::BTreeMap;
use std::path::Path;

/// Name prefix of the metadata entry; the model name rides in the entry
/// name itself (entry names are the only string-typed field in the format).
const META_PREFIX: &str = "meta.";

/// Name prefix of every family-specific full-config entry (format v3+);
/// the suffix is owned by [`ArchSpec::config_entry`].
const CONFIG_PREFIX: &str = "config.";

/// Name prefix of the per-parameter int8 scale entries written since
/// format v4 (`quant.{i}` describes `param.{i}`).
const QUANT_PREFIX: &str = "quant.";

/// Architecture metadata stored alongside checkpoint parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Model name as reported by [`IrPredictor::name`].
    pub model: String,
    /// Input image channels the model expects.
    pub input_channels: usize,
    /// Square input size the model was configured for.
    pub input_size: usize,
    /// Full family-tagged configuration (format v3; `None` for v1/v2 files
    /// and for baseline architectures, which are fully determined by name,
    /// channels and size).
    pub config: Option<ArchConfig>,
    /// Per-parameter int8 weight scales keyed by parameter index
    /// (format v4; empty for older files). Every rank-2/rank-4 parameter
    /// has an entry.
    pub quant_scales: BTreeMap<usize, Vec<f32>>,
}

impl CheckpointMeta {
    /// Reads the metadata off a live model, including the int8 scales of
    /// every quantizable parameter (so a save captures format v4).
    #[must_use]
    pub fn of(model: &dyn IrPredictor) -> Self {
        let quant_scales = model
            .parameters()
            .iter()
            .enumerate()
            .filter_map(|(i, p)| weight_scales(&p.value()).map(|s| (i, s)))
            .collect();
        CheckpointMeta {
            model: model.name().to_string(),
            input_channels: model.input_channels(),
            input_size: model.input_size(),
            config: model.arch_config(),
            quant_scales,
        }
    }

    /// The checkpoint format version this metadata corresponds to: 4 when
    /// int8 scales are recorded, 3 when the full config is, 2 otherwise
    /// (1 — no metadata at all — is represented by `split_meta` returning
    /// `None`).
    #[must_use]
    pub fn format_version(&self) -> u8 {
        if !self.quant_scales.is_empty() {
            4
        } else if self.config.is_some() {
            3
        } else {
            2
        }
    }

    /// The LMM-IR configuration, when this metadata carries one.
    #[must_use]
    pub fn lmmir_config(&self) -> Option<&LmmIrConfig> {
        match &self.config {
            Some(ArchConfig::LmmIr(c)) => Some(c),
            _ => None,
        }
    }

    /// The dynamic-family configuration, when this metadata carries one.
    #[must_use]
    pub fn dynamic_config(&self) -> Option<&DynamicIrConfig> {
        match &self.config {
            Some(ArchConfig::Dynamic(c)) => Some(c),
            _ => None,
        }
    }

    /// Serializes to a checkpoint entry. Channel count and input size are
    /// exact in `f32` for every realistic architecture (both ≪ 2²⁴).
    fn entry(&self) -> (String, Tensor) {
        let payload = vec![self.input_channels as f32, self.input_size as f32];
        (
            format!("{META_PREFIX}{}", self.model),
            Tensor::from_vec(payload, &[2]).expect("meta payload is rank 1"),
        )
    }

    /// Parses a checkpoint entry previously written by [`Self::entry`].
    fn parse(name: &str, t: &Tensor) -> Result<Self> {
        let model = name
            .strip_prefix(META_PREFIX)
            .ok_or_else(|| TensorError::Io(format!("not a meta entry: '{name}'")))?;
        let data = t.data();
        if t.dims() != [2] || data.iter().any(|v| *v < 0.0 || v.fract() != 0.0) {
            return Err(TensorError::Io(format!(
                "malformed checkpoint meta entry '{name}' (dims {:?})",
                t.dims()
            )));
        }
        Ok(CheckpointMeta {
            model: model.to_string(),
            input_channels: data[0] as usize,
            input_size: data[1] as usize,
            config: None,
            quant_scales: BTreeMap::new(),
        })
    }
}

/// A named tensor as stored in a checkpoint file.
pub type NamedTensor = (String, Tensor);

/// Parses a `quant.{i}` entry name/payload into `(index, scales)`.
fn parse_quant(name: &str, t: &Tensor) -> Result<(usize, Vec<f32>)> {
    let bad = |why: String| TensorError::Io(format!("malformed quant entry '{name}': {why}"));
    let index = name
        .strip_prefix(QUANT_PREFIX)
        .expect("caller checked the prefix")
        .parse::<usize>()
        .map_err(|_| bad("suffix must be a parameter index".to_string()))?;
    if t.rank() != 1 {
        return Err(bad(format!("scales must be rank-1, got {:?}", t.dims())));
    }
    let data = t.data();
    if let Some(v) = data.iter().find(|v| !v.is_finite() || **v <= 0.0) {
        return Err(bad(format!("scales must be finite and positive, got {v}")));
    }
    Ok((index, data.to_vec()))
}

/// Splits loaded entries into the optional metadata and the parameter list
/// (order preserved). A v3 `config.*` entry is decoded by the family that
/// owns the entry name ([`ArchSpec::for_config_entry`]), folded into
/// [`CheckpointMeta::config`] and cross-checked against the meta entry;
/// v4 `quant.{i}` entries are folded into [`CheckpointMeta::quant_scales`]
/// and cross-checked **bitwise** against a recomputation from the
/// `param.{i}` tensor they describe.
///
/// # Errors
///
/// Returns [`TensorError::Io`] for a malformed, unknown or duplicated
/// meta/config/quant entry, a config or quant entry without a meta entry,
/// a config that disagrees with the meta's architecture name, channel count
/// or input size, or a quant entry whose scales disagree with its
/// parameter.
pub fn split_meta(entries: Vec<NamedTensor>) -> Result<(Option<CheckpointMeta>, Vec<NamedTensor>)> {
    let mut meta: Option<CheckpointMeta> = None;
    let mut config: Option<ArchConfig> = None;
    let mut quant: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
    let mut params = Vec::with_capacity(entries.len());
    for (name, t) in entries {
        if name.starts_with(CONFIG_PREFIX) {
            let Some(arch) = ArchSpec::for_config_entry(&name) else {
                return Err(TensorError::Io(format!(
                    "checkpoint has an unknown config entry '{name}' \
                     (no architecture owns it)"
                )));
            };
            if config.is_some() {
                return Err(TensorError::Io(
                    "checkpoint has more than one config entry".to_string(),
                ));
            }
            config = Some(ArchConfig::decode(arch, &t)?);
        } else if name.starts_with(QUANT_PREFIX) {
            let (index, scales) = parse_quant(&name, &t)?;
            if quant.insert(index, scales).is_some() {
                return Err(TensorError::Io(format!(
                    "checkpoint has more than one '{name}' entry"
                )));
            }
        } else if name.starts_with(META_PREFIX) {
            if meta.is_some() {
                return Err(TensorError::Io(
                    "checkpoint has more than one meta entry".to_string(),
                ));
            }
            meta = Some(CheckpointMeta::parse(&name, &t)?);
        } else {
            params.push((name, t));
        }
    }
    if !quant.is_empty() {
        if meta.is_none() {
            return Err(TensorError::Io(
                "checkpoint has quant entries but no meta entry".to_string(),
            ));
        }
        // Stored scales must match a bitwise recomputation from the very
        // parameter tensors in this file: `weight_scales` is the one
        // function both the writer and the quantizing layers use, so any
        // disagreement means corruption or tampering.
        for (index, scales) in &quant {
            let param_name = format!("param.{index}");
            let Some((_, p)) = params.iter().find(|(n, _)| *n == param_name) else {
                return Err(TensorError::Io(format!(
                    "quant entry 'quant.{index}' has no matching '{param_name}'"
                )));
            };
            if weight_scales(p).as_ref() != Some(scales) {
                return Err(TensorError::Io(format!(
                    "quant entry 'quant.{index}' disagrees with the scales \
                     recomputed from '{param_name}'"
                )));
            }
        }
    }
    if let Some(cfg) = config {
        let entry = cfg.entry_name();
        let Some(meta) = meta.as_mut() else {
            return Err(TensorError::Io(format!(
                "checkpoint has a '{entry}' entry but no meta entry"
            )));
        };
        if meta.model != cfg.arch().name() {
            return Err(TensorError::Io(format!(
                "'{entry}' entry on a '{}' checkpoint (it describes '{}')",
                meta.model,
                cfg.arch().name()
            )));
        }
        if cfg.input_channels() != meta.input_channels || cfg.input_size() != meta.input_size {
            return Err(TensorError::Io(format!(
                "config entry ({} channels, {} px) disagrees with meta entry \
                 ({} channels, {} px)",
                cfg.input_channels(),
                cfg.input_size(),
                meta.input_channels,
                meta.input_size
            )));
        }
        meta.config = Some(cfg);
    }
    if !quant.is_empty() {
        meta.as_mut().expect("checked above").quant_scales = quant;
    }
    Ok((meta, params))
}

/// Reads only the metadata of a checkpoint file (`None` for pre-v2 files
/// without one).
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the file cannot be read or is malformed.
pub fn load_meta(path: impl AsRef<Path>) -> Result<Option<CheckpointMeta>> {
    let (meta, _) = split_meta(io::load(path)?)?;
    Ok(meta)
}

/// Serializes a predictor's parameters (plus architecture metadata, plus —
/// for models that carry one — the full family configuration, plus the
/// int8 weight scales of every quantizable parameter; format v4)
/// to the binary checkpoint format.
///
/// # Errors
///
/// Returns [`TensorError::Io`] on filesystem failure.
pub fn save_predictor(model: &dyn IrPredictor, path: impl AsRef<Path>) -> Result<()> {
    let meta = CheckpointMeta::of(model);
    let mut entries: Vec<(String, Tensor)> = vec![meta.entry()];
    if let Some(cfg) = &meta.config {
        entries.push(cfg.entry());
    }
    for (i, p) in model.parameters().iter().enumerate() {
        entries.push((format!("param.{i}"), p.to_tensor()));
        if let Some(scales) = meta.quant_scales.get(&i) {
            let len = scales.len();
            entries.push((
                format!("{QUANT_PREFIX}{i}"),
                Tensor::from_vec(scales.clone(), &[len]).expect("scales are rank 1"),
            ));
        }
    }
    io::save(path, &entries)
}

/// Restores a predictor's parameters from a checkpoint file.
///
/// When the checkpoint carries metadata, the target model's name, input
/// channel count and input size must match; a v1 checkpoint without
/// metadata is accepted and validated by parameter count/shape alone.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the file cannot be read, the metadata
/// names a different architecture, or the parameter count differs; and
/// [`TensorError::ShapeMismatch`] when a tensor's shape disagrees with the
/// model architecture.
pub fn load_predictor(model: &dyn IrPredictor, path: impl AsRef<Path>) -> Result<()> {
    let (meta, entries) = split_meta(io::load(path)?)?;
    if let Some(meta) = meta {
        let target = CheckpointMeta::of(model);
        if meta.model != target.model
            || meta.input_channels != target.input_channels
            || meta.input_size != target.input_size
        {
            return Err(TensorError::Io(format!(
                "checkpoint architecture mismatch: file was saved from \
                 '{}' ({} channels, {} px) but the target model is \
                 '{}' ({} channels, {} px)",
                meta.model,
                meta.input_channels,
                meta.input_size,
                target.model,
                target.input_channels,
                target.input_size,
            )));
        }
        // The full config is compared only when both sides record one: a
        // v2 checkpoint (no config) restores into any same-shape model, and
        // restore_parameters still validates every tensor shape below. Seed
        // differences are fine — weights are restored.
        if let (Some(file_cfg), Some(model_cfg)) = (&meta.config, &target.config) {
            if !file_cfg.same_trunk(model_cfg) {
                return Err(TensorError::Io(format!(
                    "checkpoint configuration mismatch: file records \
                     {file_cfg:?} but the target model is built as \
                     {model_cfg:?}"
                )));
            }
        }
    }
    restore_parameters(model, entries)
}

/// Assigns already-loaded (and meta-stripped) parameter entries into a
/// model, validating count and shapes first — the restore half of
/// [`load_predictor`], exposed so callers that already parsed a checkpoint
/// (e.g. the serving registry, which reads meta and weights from one
/// `io::load`) need not read the file twice.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the parameter count differs and
/// [`TensorError::ShapeMismatch`] when a tensor's shape disagrees with the
/// model architecture.
pub fn restore_parameters(model: &dyn IrPredictor, entries: Vec<NamedTensor>) -> Result<()> {
    let params = model.parameters();
    if entries.len() != params.len() {
        return Err(TensorError::Io(format!(
            "checkpoint has {} tensors but model has {} parameters",
            entries.len(),
            params.len()
        )));
    }
    for (p, (_, t)) in params.iter().zip(&entries) {
        if p.value().dims() != t.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: p.value().dims().to_vec(),
                rhs: t.dims().to_vec(),
                op: "load_predictor",
            });
        }
    }
    for (p, (_, t)) in params.iter().zip(entries) {
        p.set_value(t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{iredge, irpnet};
    use crate::lnt::LntConfig;
    use crate::model::IrPredictor;
    use lmmir_tensor::{Tensor, Var};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lmmir_core_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trip() {
        let a = iredge(16, 1);
        let path = tmp("iredge.lmmt");
        save_predictor(&a, &path).unwrap();
        let b = iredge(16, 2); // different seed => different weights
        let x = Var::constant(Tensor::ones(&[1, 3, 16, 16]));
        a.set_training(false);
        b.set_training(false);
        let ya = a.forward(&x, None).unwrap().to_tensor();
        let yb_before = b.forward(&x, None).unwrap().to_tensor();
        assert_ne!(ya.data(), yb_before.data());
        load_predictor(&b, &path).unwrap();
        let yb_after = b.forward(&x, None).unwrap().to_tensor();
        assert_eq!(ya.data(), yb_after.data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture_by_name() {
        let a = iredge(16, 1);
        let path = tmp("mismatch.lmmt");
        save_predictor(&a, &path).unwrap();
        let other = irpnet(16, 1);
        let err = load_predictor(&other, &path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("IREDGe") && msg.contains("IRPnet"),
            "mismatch error should name both architectures: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_same_model_different_input_size() {
        let a = iredge(16, 1);
        let path = tmp("sizes.lmmt");
        save_predictor(&a, &path).unwrap();
        // Same architecture family and parameter shapes — only the
        // configured input size differs; the meta check catches it where
        // shape validation could not.
        let other = iredge(32, 1);
        let err = load_predictor(&other, &path).unwrap_err();
        assert!(err.to_string().contains("16 px"), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_round_trips_through_file() {
        let a = iredge(16, 1);
        let path = tmp("meta.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path).unwrap().expect("v2 checkpoints have meta");
        assert_eq!(meta, CheckpointMeta::of(&a));
        assert_eq!(meta.model, "IREDGe");
        assert_eq!(meta.input_channels, 3);
        assert_eq!(meta.input_size, 16);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_checkpoint_without_meta_still_loads() {
        let a = iredge(16, 1);
        // Write the raw parameter entries only, as a pre-meta writer did.
        let entries: Vec<(String, Tensor)> = a
            .parameters()
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("param.{i}"), p.to_tensor()))
            .collect();
        let path = tmp("legacy.lmmt");
        io::save(&path, &entries).unwrap();
        let b = iredge(16, 2);
        load_predictor(&b, &path).unwrap();
        assert!(load_meta(&path).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_meta_entry_is_rejected() {
        let entries = vec![(
            "meta.IREDGe".to_string(),
            Tensor::from_vec(vec![3.5, 16.0], &[2]).unwrap(),
        )];
        assert!(split_meta(entries).is_err(), "fractional channel count");
        let entries = vec![
            (
                "meta.A".to_string(),
                Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
            ),
            (
                "meta.B".to_string(),
                Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
            ),
        ];
        assert!(split_meta(entries).is_err(), "duplicate meta entries");
    }

    #[test]
    fn load_missing_file_errors() {
        let a = iredge(16, 1);
        assert!(load_predictor(&a, tmp("does_not_exist.lmmt")).is_err());
    }

    fn custom_lmmir_cfg() -> LmmIrConfig {
        // Deliberately NOT the quick() widths/LNT plan: this is the exact
        // case a v2 reader could not serve.
        LmmIrConfig {
            in_channels: 6,
            widths: vec![4, 8, 16],
            stem_kernel: 5,
            lnt: LntConfig {
                d_model: 16,
                heads: 2,
                layers: 1,
                max_points: 128,
                chunk: 32,
                ff_mult: 3,
            },
            use_lnt: true,
            use_attention_gates: false,
            input_size: 16,
            seed: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn v3_full_config_round_trips() {
        use crate::model::LmmIr;
        let cfg = custom_lmmir_cfg();
        let a = LmmIr::new(cfg.clone());
        let path = tmp("v3_config.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path).unwrap().expect("v3 checkpoints have meta");
        // Fresh saves always carry int8 scales now (format v4); the point
        // of this test — the full config surviving the round trip — holds.
        assert_eq!(meta.format_version(), 4);
        assert_eq!(meta.lmmir_config(), Some(&cfg), "config must survive");
        assert_eq!(meta.lmmir_config().unwrap().seed, 0xDEAD_BEEF_CAFE_F00D);
        // And the weights restore into a model built from that config.
        let b = LmmIr::new(LmmIrConfig {
            seed: 1,
            ..custom_lmmir_cfg()
        });
        load_predictor(&b, &path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_rejects_config_width_mismatch() {
        use crate::model::LmmIr;
        let a = LmmIr::new(custom_lmmir_cfg());
        let path = tmp("v3_mismatch.lmmt");
        save_predictor(&a, &path).unwrap();
        let mut other_cfg = custom_lmmir_cfg();
        other_cfg.widths = vec![4, 8];
        let b = LmmIr::new(other_cfg);
        let err = load_predictor(&b, &path).unwrap_err().to_string();
        assert!(err.contains("configuration mismatch"), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_layout_checkpoint_loads_through_v3_reader() {
        use crate::model::LmmIr;
        // Pinned v2 writer shape: one `meta.{name}` entry of [channels,
        // size] followed by `param.{i}` entries — exactly what PR 3's
        // save_predictor produced, hand-written so the current writer
        // cannot mask a compatibility break.
        let cfg = LmmIrConfig {
            input_size: 16,
            widths: vec![12, 24],
            ..LmmIrConfig::quick()
        };
        let a = LmmIr::new(cfg.clone());
        let mut entries = vec![(
            "meta.LMM-IR".to_string(),
            Tensor::from_vec(vec![6.0, 16.0], &[2]).unwrap(),
        )];
        entries.extend(
            a.parameters()
                .iter()
                .enumerate()
                .map(|(i, p)| (format!("param.{i}"), p.to_tensor())),
        );
        let path = tmp("v2_layout.lmmt");
        io::save(&path, &entries).unwrap();
        let meta = load_meta(&path).unwrap().expect("v2 files carry meta");
        assert_eq!(meta.format_version(), 2);
        assert!(meta.config.is_none());
        // A v2 file restores into a same-shape model even though the model
        // itself carries a full config (the file predates configs).
        let b = LmmIr::new(LmmIrConfig { seed: 9, ..cfg });
        load_predictor(&b, &path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_layout_checkpoint_loads_through_v4_reader() {
        use crate::model::LmmIr;
        // Pinned v3 writer shape: meta + config + `param.{i}` entries and
        // nothing else — what PR 4's save_predictor produced. Built by
        // stripping the quant entries from a fresh save, so the parameter
        // payload is bit-identical to a real v3 file's.
        let cfg = custom_lmmir_cfg();
        let a = LmmIr::new(cfg.clone());
        let path = tmp("v3_layout.lmmt");
        save_predictor(&a, &path).unwrap();
        let entries: Vec<NamedTensor> = io::load(&path)
            .unwrap()
            .into_iter()
            .filter(|(n, _)| !n.starts_with("quant."))
            .collect();
        io::save(&path, &entries).unwrap();
        let meta = load_meta(&path).unwrap().expect("v3 files carry meta");
        assert_eq!(meta.format_version(), 3);
        assert!(meta.quant_scales.is_empty());
        assert_eq!(meta.lmmir_config(), Some(&cfg), "config must survive");
        let b = LmmIr::new(LmmIrConfig { seed: 9, ..cfg });
        load_predictor(&b, &path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v4_quant_scales_round_trip() {
        // The stored scales must be byte-for-byte what `CheckpointMeta::of`
        // computes from the live model — the invariant that lets quantized
        // serving recompute identical scales from any format version.
        let a = irpnet(16, 3);
        let expected = CheckpointMeta::of(&a);
        assert!(
            !expected.quant_scales.is_empty(),
            "every conv/linear weight contributes scales"
        );
        for (i, p) in a.parameters().iter().enumerate() {
            assert_eq!(
                expected.quant_scales.contains_key(&i),
                matches!(p.value().rank(), 2 | 4),
                "param {i} rank {}",
                p.value().rank()
            );
        }
        let path = tmp("v4_scales.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path).unwrap().expect("v4 files carry meta");
        assert_eq!(meta.format_version(), 4);
        assert_eq!(meta.quant_scales, expected.quant_scales);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_quant_entries_are_rejected() {
        let a = iredge(16, 1);
        let path = tmp("v4_tamper.lmmt");
        save_predictor(&a, &path).unwrap();
        let entries = io::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Scales disagreeing with their parameter.
        let mut tampered = entries.clone();
        let q = tampered
            .iter_mut()
            .find(|(n, _)| n.starts_with("quant."))
            .expect("fresh saves carry quant entries");
        q.1 = q.1.scale(2.0);
        let err = split_meta(tampered).unwrap_err().to_string();
        assert!(err.contains("disagrees"), "got {err}");

        // A quant entry with no matching parameter.
        let mut orphan = entries.clone();
        let scales = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        orphan.push(("quant.999".to_string(), scales.clone()));
        let err = split_meta(orphan).unwrap_err().to_string();
        assert!(err.contains("no matching"), "got {err}");

        // Non-positive scales are rejected before any comparison.
        let bad = vec![(
            "quant.0".to_string(),
            Tensor::from_vec(vec![0.0], &[1]).unwrap(),
        )];
        let err = split_meta(bad).unwrap_err().to_string();
        assert!(err.contains("finite and positive"), "got {err}");

        // Quant entries without a meta entry.
        let headless: Vec<NamedTensor> = entries
            .into_iter()
            .filter(|(n, _)| !n.starts_with(META_PREFIX))
            .collect();
        let err = split_meta(headless).unwrap_err().to_string();
        assert!(err.contains("no meta entry"), "got {err}");
    }

    fn custom_dynamic_cfg() -> crate::dynamic::DynamicIrConfig {
        crate::dynamic::DynamicIrConfig {
            windows: 5,
            widths: vec![4, 8, 16],
            stem_kernel: 5,
            input_size: 16,
            seed: 0xFEED_FACE_BEEF_1234,
        }
    }

    #[test]
    fn dynamic_config_round_trips() {
        use crate::dynamic::{DynamicIrConfig, DynamicIrPredictor};
        let cfg = custom_dynamic_cfg();
        let a = DynamicIrPredictor::new(cfg.clone());
        let path = tmp("dynamic_config.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path)
            .unwrap()
            .expect("dynamic checkpoints have meta");
        assert_eq!(meta.model, "DynIR");
        assert_eq!(meta.input_channels, 5, "channels record the window count");
        assert_eq!(meta.format_version(), 4, "fresh saves carry int8 scales");
        assert_eq!(meta.dynamic_config(), Some(&cfg), "config must survive");
        assert_eq!(meta.dynamic_config().unwrap().seed, 0xFEED_FACE_BEEF_1234);
        assert!(meta.lmmir_config().is_none(), "no LMM-IR config here");
        // Weights restore into a model built from that config (fresh seed).
        let b = DynamicIrPredictor::new(DynamicIrConfig {
            seed: 1,
            ..custom_dynamic_cfg()
        });
        load_predictor(&b, &path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_rejects_trunk_mismatch() {
        use crate::dynamic::{DynamicIrConfig, DynamicIrPredictor};
        let a = DynamicIrPredictor::new(custom_dynamic_cfg());
        let path = tmp("dynamic_mismatch.lmmt");
        save_predictor(&a, &path).unwrap();
        let b = DynamicIrPredictor::new(DynamicIrConfig {
            widths: vec![4, 8],
            ..custom_dynamic_cfg()
        });
        let err = load_predictor(&b, &path).unwrap_err().to_string();
        assert!(err.contains("mismatch"), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_dynamic_entries_are_rejected() {
        let meta = |channels: f32, size: f32| {
            (
                "meta.DynIR".to_string(),
                Tensor::from_vec(vec![channels, size], &[2]).unwrap(),
            )
        };
        let payload = |v: Vec<f32>| {
            let len = v.len();
            (
                "config.dynamic".to_string(),
                Tensor::from_vec(v, &[len]).unwrap(),
            )
        };
        // layout, windows, stem, size, seed×4, widths_len, widths…
        let good = vec![1.0, 5.0, 5.0, 16.0, 0.0, 0.0, 0.0, 0.0, 3.0, 4.0, 8.0, 16.0];
        // Well-formed parses.
        let (m, _) = split_meta(vec![meta(5.0, 16.0), payload(good.clone())]).unwrap();
        let m = m.unwrap();
        let cfg = m.dynamic_config().unwrap();
        assert_eq!(cfg.windows, 5);
        assert_eq!(cfg.widths, vec![4, 8, 16]);
        // Too short.
        assert!(split_meta(vec![meta(5.0, 16.0), payload(vec![1.0; 4])]).is_err());
        // Fractional field.
        let mut frac = good.clone();
        frac[9] = 4.5;
        assert!(split_meta(vec![meta(5.0, 16.0), payload(frac)]).is_err());
        // Width plan lies about payload length.
        let mut lying = good.clone();
        lying[8] = 7.0;
        assert!(split_meta(vec![meta(5.0, 16.0), payload(lying)]).is_err());
        // Dynamic config without a meta entry.
        assert!(split_meta(vec![payload(good.clone())]).is_err());
        // Dynamic config on a static checkpoint.
        let static_meta = (
            "meta.IREDGe".to_string(),
            Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
        );
        assert!(split_meta(vec![static_meta, payload(good.clone())]).is_err());
        // Window count disagreeing with the meta's channel count.
        assert!(split_meta(vec![meta(4.0, 16.0), payload(good.clone())]).is_err());
        // Config failing its own validation (size not divisible by pools).
        let mut bad_size = good.clone();
        bad_size[3] = 17.0;
        assert!(split_meta(vec![meta(5.0, 17.0), payload(bad_size)]).is_err());
        // Duplicate dynamic entries.
        assert!(split_meta(vec![meta(5.0, 16.0), payload(good.clone()), payload(good)]).is_err());
    }

    #[test]
    fn hostile_config_entries_are_rejected() {
        let meta = (
            "meta.LMM-IR".to_string(),
            Tensor::from_vec(vec![6.0, 16.0], &[2]).unwrap(),
        );
        let cfg_payload = |v: Vec<f32>| {
            let len = v.len();
            (
                "config.lmmir".to_string(),
                Tensor::from_vec(v, &[len]).unwrap(),
            )
        };
        // Too short.
        let short = cfg_payload(vec![1.0; 5]);
        assert!(split_meta(vec![meta.clone(), short]).is_err());
        // Fractional field.
        let mut good = vec![1.0, 6.0, 7.0, 16.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        good.extend([32.0, 4.0, 2.0, 512.0, 128.0, 2.0, 2.0, 12.0, 24.0]);
        let mut frac = good.clone();
        frac[10] = 32.5;
        assert!(split_meta(vec![meta.clone(), cfg_payload(frac)]).is_err());
        // Width-plan length lies about the payload length.
        let mut lying = good.clone();
        lying[16] = 40.0;
        assert!(split_meta(vec![meta.clone(), cfg_payload(lying)]).is_err());
        // Config without any meta entry.
        assert!(split_meta(vec![cfg_payload(good.clone())]).is_err());
        // Config on a non-LMM-IR checkpoint.
        let ired_meta = (
            "meta.IREDGe".to_string(),
            Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
        );
        assert!(split_meta(vec![ired_meta, cfg_payload(good.clone())]).is_err());
        // Config disagreeing with the meta's size.
        let big_meta = (
            "meta.LMM-IR".to_string(),
            Tensor::from_vec(vec![6.0, 32.0], &[2]).unwrap(),
        );
        assert!(split_meta(vec![big_meta, cfg_payload(good.clone())]).is_err());
        // The well-formed payload parses.
        let (meta_out, params) = split_meta(vec![meta, cfg_payload(good)]).unwrap();
        let meta_out = meta_out.unwrap();
        assert!(params.is_empty());
        assert_eq!(meta_out.format_version(), 3);
        let cfg = meta_out.lmmir_config().unwrap();
        assert_eq!(cfg.widths, vec![12, 24]);
        assert_eq!(cfg.stem_kernel, 7);
    }

    #[test]
    fn unknown_config_entry_is_rejected() {
        let meta = (
            "meta.IREDGe".to_string(),
            Tensor::from_vec(vec![3.0, 16.0], &[2]).unwrap(),
        );
        let rogue = (
            "config.resnet".to_string(),
            Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap(),
        );
        let err = split_meta(vec![meta, rogue]).unwrap_err().to_string();
        assert!(err.contains("unknown config entry"), "got {err}");
    }

    #[test]
    fn two_config_entries_of_any_kind_are_rejected() {
        use crate::zoo::{CfirstNet, CfirstNetConfig, WacaUnet, WacaUnetConfig};
        let c = CfirstNet::new(CfirstNetConfig {
            widths: vec![4, 8],
            input_size: 16,
            ..CfirstNetConfig::quick()
        });
        let w = WacaUnet::new(WacaUnetConfig {
            widths: vec![4, 8],
            input_size: 16,
            ..WacaUnetConfig::quick()
        });
        let meta = CheckpointMeta::of(&c);
        let entries = vec![
            meta.entry(),
            meta.config.as_ref().unwrap().entry(),
            w.arch_config().unwrap().entry(),
        ];
        let err = split_meta(entries).unwrap_err().to_string();
        assert!(err.contains("more than one config entry"), "got {err}");
    }

    #[test]
    fn zoo_configs_round_trip_and_reject_mismatched_trunks() {
        use crate::zoo::{CfirstNet, CfirstNetConfig, WacaUnet, WacaUnetConfig};
        let ccfg = CfirstNetConfig {
            widths: vec![4, 8, 16],
            stem_kernel: 5,
            input_size: 16,
            seed: 0xAAAA_BBBB_CCCC_DDDD,
            ..CfirstNetConfig::quick()
        };
        let wcfg = WacaUnetConfig {
            widths: vec![4, 8, 16],
            reduction: 2,
            input_size: 16,
            seed: 0x1234_5678_9ABC_DEF0,
            ..WacaUnetConfig::quick()
        };

        let a = CfirstNet::new(ccfg.clone());
        let path = tmp("cfirstnet_config.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path)
            .unwrap()
            .expect("zoo checkpoints have meta");
        assert_eq!(meta.model, "CFIRSTNET");
        assert_eq!(meta.input_channels, 8);
        assert_eq!(meta.format_version(), 4, "fresh saves carry int8 scales");
        assert_eq!(meta.config, Some(ArchConfig::Cfirst(ccfg.clone())));
        // Weights restore into a model built from that config (fresh seed).
        let b = CfirstNet::new(CfirstNetConfig {
            seed: 1,
            ..ccfg.clone()
        });
        load_predictor(&b, &path).unwrap();
        // A different trunk plan is rejected by the config cross-check.
        let wrong = CfirstNet::new(CfirstNetConfig {
            widths: vec![4, 8],
            ..ccfg
        });
        let err = load_predictor(&wrong, &path).unwrap_err().to_string();
        assert!(err.contains("mismatch"), "got {err}");
        std::fs::remove_file(&path).ok();

        let a = WacaUnet::new(wcfg.clone());
        let path = tmp("waca_config.lmmt");
        save_predictor(&a, &path).unwrap();
        let meta = load_meta(&path)
            .unwrap()
            .expect("zoo checkpoints have meta");
        assert_eq!(meta.model, "WACA-UNet");
        assert_eq!(meta.config, Some(ArchConfig::Waca(wcfg.clone())));
        let b = WacaUnet::new(WacaUnetConfig {
            seed: 2,
            ..wcfg.clone()
        });
        load_predictor(&b, &path).unwrap();
        // A different attention reduction changes the trunk; reject it.
        let wrong = WacaUnet::new(WacaUnetConfig {
            reduction: 1,
            ..wcfg
        });
        let err = load_predictor(&wrong, &path).unwrap_err().to_string();
        assert!(err.contains("configuration mismatch"), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_zoo_entries_are_rejected() {
        let meta = |model: &str, channels: f32| {
            (
                format!("meta.{model}"),
                Tensor::from_vec(vec![channels, 16.0], &[2]).unwrap(),
            )
        };
        let payload = |entry: &str, v: Vec<f32>| {
            let len = v.len();
            (entry.to_string(), Tensor::from_vec(v, &[len]).unwrap())
        };
        // layout, in_channels, stem, size, seed×4, widths_len, widths…
        let cgood = vec![1.0, 8.0, 3.0, 16.0, 0.0, 0.0, 0.0, 0.0, 2.0, 4.0, 8.0];
        let (m, _) = split_meta(vec![
            meta("CFIRSTNET", 8.0),
            payload("config.cfirstnet", cgood.clone()),
        ])
        .unwrap();
        assert!(matches!(
            m.unwrap().config,
            Some(ArchConfig::Cfirst(ref c)) if c.widths == vec![4, 8]
        ));
        // Too short.
        assert!(split_meta(vec![
            meta("CFIRSTNET", 8.0),
            payload("config.cfirstnet", vec![1.0; 4])
        ])
        .is_err());
        // Width plan lies about the payload length.
        let mut lying = cgood.clone();
        lying[8] = 9.0;
        assert!(split_meta(vec![
            meta("CFIRSTNET", 8.0),
            payload("config.cfirstnet", lying)
        ])
        .is_err());
        // Channel count disagreeing with the meta entry.
        assert!(split_meta(vec![
            meta("CFIRSTNET", 6.0),
            payload("config.cfirstnet", cgood.clone())
        ])
        .is_err());
        // Config on the wrong family's checkpoint.
        assert!(split_meta(vec![
            meta("WACA-UNet", 8.0),
            payload("config.cfirstnet", cgood.clone())
        ])
        .is_err());
        // Config failing its own validation (size not divisible by pools).
        let mut bad_size = cgood.clone();
        bad_size[3] = 17.0;
        assert!(split_meta(vec![
            meta("CFIRSTNET", 8.0),
            payload("config.cfirstnet", bad_size)
        ])
        .is_err());
        // Config without a meta entry.
        assert!(split_meta(vec![payload("config.cfirstnet", cgood)]).is_err());

        // layout, in_channels, stem, size, reduction, seed×4, widths_len, widths…
        let wgood = vec![1.0, 8.0, 3.0, 16.0, 2.0, 0.0, 0.0, 0.0, 0.0, 2.0, 4.0, 8.0];
        let (m, _) = split_meta(vec![
            meta("WACA-UNet", 8.0),
            payload("config.waca", wgood.clone()),
        ])
        .unwrap();
        assert!(matches!(
            m.unwrap().config,
            Some(ArchConfig::Waca(ref c)) if c.reduction == 2
        ));
        // A zero reduction fails the config's own validation.
        let mut zero_red = wgood.clone();
        zero_red[4] = 0.0;
        assert!(split_meta(vec![
            meta("WACA-UNet", 8.0),
            payload("config.waca", zero_red)
        ])
        .is_err());
        // Fractional field.
        let mut frac = wgood;
        frac[10] = 4.5;
        assert!(split_meta(vec![meta("WACA-UNet", 8.0), payload("config.waca", frac)]).is_err());
    }
}
