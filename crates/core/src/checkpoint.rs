//! Saving and restoring trained predictors.
//!
//! Parameter order is defined by each model's `parameters()` and is
//! deterministic for a fixed architecture, so checkpoints restore exactly
//! into a freshly constructed model with the same configuration.

use crate::model::IrPredictor;
use lmmir_tensor::{io, Result, Tensor, TensorError};
use std::path::Path;

/// Serializes a predictor's parameters to the binary checkpoint format.
///
/// # Errors
///
/// Returns [`TensorError::Io`] on filesystem failure.
pub fn save_predictor(model: &dyn IrPredictor, path: impl AsRef<Path>) -> Result<()> {
    let entries: Vec<(String, Tensor)> = model
        .parameters()
        .iter()
        .enumerate()
        .map(|(i, p)| (format!("param.{i}"), p.to_tensor()))
        .collect();
    io::save(path, &entries)
}

/// Restores a predictor's parameters from a checkpoint file.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the file cannot be read or the
/// parameter count differs, and [`TensorError::ShapeMismatch`] when a
/// tensor's shape disagrees with the model architecture.
pub fn load_predictor(model: &dyn IrPredictor, path: impl AsRef<Path>) -> Result<()> {
    let entries = io::load(path)?;
    let params = model.parameters();
    if entries.len() != params.len() {
        return Err(TensorError::Io(format!(
            "checkpoint has {} tensors but model has {} parameters",
            entries.len(),
            params.len()
        )));
    }
    for (p, (_, t)) in params.iter().zip(&entries) {
        if p.value().dims() != t.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: p.value().dims().to_vec(),
                rhs: t.dims().to_vec(),
                op: "load_predictor",
            });
        }
    }
    for (p, (_, t)) in params.iter().zip(entries) {
        p.set_value(t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{iredge, irpnet};
    use crate::model::IrPredictor;
    use lmmir_tensor::{Tensor, Var};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lmmir_core_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trip() {
        let a = iredge(16, 1);
        let path = tmp("iredge.lmmt");
        save_predictor(&a, &path).unwrap();
        let b = iredge(16, 2); // different seed => different weights
        let x = Var::constant(Tensor::ones(&[1, 3, 16, 16]));
        a.set_training(false);
        b.set_training(false);
        let ya = a.forward(&x, None).unwrap().to_tensor();
        let yb_before = b.forward(&x, None).unwrap().to_tensor();
        assert_ne!(ya.data(), yb_before.data());
        load_predictor(&b, &path).unwrap();
        let yb_after = b.forward(&x, None).unwrap().to_tensor();
        assert_eq!(ya.data(), yb_after.data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let a = iredge(16, 1);
        let path = tmp("mismatch.lmmt");
        save_predictor(&a, &path).unwrap();
        let other = irpnet(16, 1);
        assert!(load_predictor(&other, &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let a = iredge(16, 1);
        assert!(load_predictor(&a, tmp("does_not_exist.lmmt")).is_err());
    }
}
