//! Evaluation metrics: F1 at the 90 %-of-max threshold, MAE, TAT.
//!
//! Definitions follow §II-D of the paper (and the ICCAD-2023 contest):
//! pixels whose *true* IR drop exceeds 90 % of the map's maximum true drop
//! are positive; predictions are classified against 90 % of the *predicted*
//! maximum, so a model is judged on whether it localizes its own hotspots
//! where the real ones are.

use lmmir_features::Raster;

/// Fraction of a map's own maximum above which a pixel counts as a hotspot
/// (the paper and the ICCAD-2023 contest use 90 %).
pub const HOTSPOT_FRAC: f32 = 0.9;

/// Classifies every pixel of a map against `thr_frac` of its own maximum,
/// returning the threshold (volts) and the row-major 0/1 mask.
///
/// This is the predicate [`confusion`] applies to the prediction side, so
/// a mask served to a client matches exactly what the evaluation pipeline
/// would score.
#[must_use]
pub fn hotspot_mask(map: &Raster, thr_frac: f32) -> (f32, Vec<u8>) {
    let max = map.max();
    let thr = max * thr_frac;
    let mask = map
        .data()
        .iter()
        .map(|&v| u8::from(v >= thr && max > 0.0))
        .collect();
    (thr, mask)
}

/// Confusion counts for hotspot classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Confusion {
    /// Precision (`tp / (tp + fp)`; 0 when undefined).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall (`tp / (tp + fn)`; 0 when undefined).
    #[must_use]
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// F1 = harmonic mean of precision and recall (0 when undefined).
    #[must_use]
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Computes the hotspot confusion matrix at a relative threshold
/// (`thr_frac` of each map's own maximum; the paper uses 0.9).
///
/// # Panics
///
/// Panics when the rasters differ in size.
#[must_use]
pub fn confusion(pred: &Raster, truth: &Raster, thr_frac: f32) -> Confusion {
    assert_eq!(
        (pred.width(), pred.height()),
        (truth.width(), truth.height()),
        "prediction/truth raster size mismatch"
    );
    let thr_t = truth.max() * thr_frac;
    let thr_p = pred.max() * thr_frac;
    let mut c = Confusion::default();
    for (p, t) in pred.data().iter().zip(truth.data()) {
        let pp = *p >= thr_p && pred.max() > 0.0;
        let tt = *t >= thr_t && truth.max() > 0.0;
        match (pp, tt) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// F1 score at the paper's 90 % threshold.
#[must_use]
pub fn f1_score(pred: &Raster, truth: &Raster) -> f64 {
    confusion(pred, truth, HOTSPOT_FRAC).f1()
}

/// Mean absolute error in volts.
///
/// # Panics
///
/// Panics when the rasters differ in size.
#[must_use]
pub fn mae(pred: &Raster, truth: &Raster) -> f64 {
    assert_eq!(
        (pred.width(), pred.height()),
        (truth.width(), truth.height()),
        "prediction/truth raster size mismatch"
    );
    if pred.data().is_empty() {
        return 0.0;
    }
    pred.data()
        .iter()
        .zip(truth.data())
        .map(|(p, t)| f64::from((p - t).abs()))
        .sum::<f64>()
        / pred.data().len() as f64
}

/// Pearson correlation coefficient between a predicted and a true map —
/// the CC column CFIRSTNET-style comparisons report alongside MAE.
///
/// Returns 0 when either map has no variance (a constant map correlates
/// with nothing) or the maps are empty.
///
/// # Panics
///
/// Panics when the rasters differ in size.
#[must_use]
pub fn cc(pred: &Raster, truth: &Raster) -> f64 {
    assert_eq!(
        (pred.width(), pred.height()),
        (truth.width(), truth.height()),
        "prediction/truth raster size mismatch"
    );
    let n = pred.data().len();
    if n == 0 {
        return 0.0;
    }
    let mean = |r: &Raster| r.data().iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
    let (mp, mt) = (mean(pred), mean(truth));
    let (mut cov, mut vp, mut vt) = (0.0f64, 0.0f64, 0.0f64);
    for (p, t) in pred.data().iter().zip(truth.data()) {
        let (dp, dt) = (f64::from(*p) - mp, f64::from(*t) - mt);
        cov += dp * dt;
        vp += dp * dp;
        vt += dt * dt;
    }
    if vp == 0.0 || vt == 0.0 {
        return 0.0;
    }
    cov / (vp * vt).sqrt()
}

/// Metrics for one evaluated case, matching one row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseMetrics {
    /// Case id.
    pub id: String,
    /// F1 at the 90 % threshold.
    pub f1: f64,
    /// MAE in units of 1e-4 V (the paper's reporting unit).
    pub mae_e4: f64,
    /// Turn-around time: model inference seconds.
    pub tat: f64,
}

/// Column averages across cases (the `Avg` row of Table III).
#[must_use]
pub fn average(rows: &[CaseMetrics]) -> CaseMetrics {
    let n = rows.len().max(1) as f64;
    CaseMetrics {
        id: "Avg".to_string(),
        f1: rows.iter().map(|r| r.f1).sum::<f64>() / n,
        mae_e4: rows.iter().map(|r| r.mae_e4).sum::<f64>() / n,
        tat: rows.iter().map(|r| r.tat).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raster(values: &[f32], w: usize) -> Raster {
        Raster::from_vec(w, values.len() / w, values.to_vec())
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let t = raster(&[0.1, 0.2, 1.0, 0.3], 2);
        assert_eq!(f1_score(&t, &t), 1.0);
        assert_eq!(mae(&t, &t), 0.0);
    }

    #[test]
    fn disjoint_hotspots_score_zero() {
        let truth = raster(&[1.0, 0.0, 0.0, 0.0], 2);
        let pred = raster(&[0.0, 0.0, 0.0, 1.0], 2);
        assert_eq!(f1_score(&pred, &truth), 0.0);
    }

    #[test]
    fn confusion_counts_add_up() {
        let truth = raster(&[1.0, 0.95, 0.5, 0.0], 2);
        let pred = raster(&[1.0, 0.5, 0.95, 0.0], 2);
        let c = confusion(&pred, &truth, 0.9);
        assert_eq!(c.tp + c.fp + c.fn_ + c.tn, 4);
        assert_eq!(c.tp, 1); // pixel 0
        assert_eq!(c.fp, 1); // pixel 2
        assert_eq!(c.fn_, 1); // pixel 1
    }

    #[test]
    fn f1_insensitive_to_global_scale() {
        // The relative threshold makes F1 invariant to multiplying the
        // prediction by a constant — it scores localization, not magnitude.
        let truth = raster(&[1.0, 0.95, 0.2, 0.1, 0.0, 0.3], 3);
        let pred = raster(&[0.5, 0.48, 0.1, 0.05, 0.0, 0.15], 3);
        assert!((f1_score(&pred, &truth) - 1.0).abs() < 1e-12);
        // ... while MAE is not.
        assert!(mae(&pred, &truth) > 0.0);
    }

    #[test]
    fn all_zero_maps_are_degenerate_but_safe() {
        let z = raster(&[0.0; 4], 2);
        let t = raster(&[1.0, 0.0, 0.0, 0.0], 2);
        assert_eq!(f1_score(&z, &t), 0.0);
        let c = confusion(&z, &z, 0.9);
        assert_eq!(c.f1(), 0.0); // no positives anywhere
    }

    #[test]
    fn hotspot_mask_matches_confusion_predicate() {
        let map = raster(&[1.0, 0.95, 0.5, 0.0], 2);
        let (thr, mask) = hotspot_mask(&map, 0.9);
        assert!((thr - 0.9).abs() < 1e-6);
        assert_eq!(mask, vec![1, 1, 0, 0]);
        // An all-zero map has no hotspots even though 0 >= 0·0.9.
        let (_, mask) = hotspot_mask(&raster(&[0.0; 4], 2), 0.9);
        assert_eq!(mask, vec![0; 4]);
    }

    #[test]
    fn mae_is_mean_of_abs_diffs() {
        let a = raster(&[0.0, 1.0], 2);
        let b = raster(&[1.0, 1.0], 2);
        assert!((mae(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_row() {
        let rows = vec![
            CaseMetrics {
                id: "a".into(),
                f1: 0.4,
                mae_e4: 2.0,
                tat: 1.0,
            },
            CaseMetrics {
                id: "b".into(),
                f1: 0.8,
                mae_e4: 4.0,
                tat: 3.0,
            },
        ];
        let avg = average(&rows);
        assert!((avg.f1 - 0.6).abs() < 1e-12);
        assert!((avg.mae_e4 - 3.0).abs() < 1e-12);
        assert!((avg.tat - 2.0).abs() < 1e-12);
        assert_eq!(avg.id, "Avg");
    }

    #[test]
    fn cc_tracks_linear_relationships() {
        let t = raster(&[0.1, 0.2, 0.3, 0.4], 2);
        // Any positive affine transform correlates perfectly.
        let scaled = raster(&[0.3, 0.5, 0.7, 0.9], 2);
        assert!((cc(&scaled, &t) - 1.0).abs() < 1e-12);
        // A negated map anti-correlates perfectly.
        let neg = raster(&[0.4, 0.3, 0.2, 0.1], 2);
        assert!((cc(&neg, &t) + 1.0).abs() < 1e-12);
        // Constant maps carry no signal.
        let flat = raster(&[0.5; 4], 2);
        assert_eq!(cc(&flat, &t), 0.0);
        assert_eq!(cc(&t, &flat), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn cc_size_mismatch_panics() {
        let a = raster(&[0.0; 4], 2);
        let b = raster(&[0.0; 6], 3);
        let _ = cc(&a, &b);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn size_mismatch_panics() {
        let a = raster(&[0.0; 4], 2);
        let b = raster(&[0.0; 6], 3);
        let _ = mae(&a, &b);
    }
}
