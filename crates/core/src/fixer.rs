//! Fast what-if PDN fixing: rank candidate pad insertions by *predicted*
//! IR improvement.
//!
//! The paper's core motivation is that "addressing IR drop violations
//! frequently demands iterative analysis": every candidate fix needs a new
//! IR map, and golden solves make the loop hours long. With a trained
//! predictor each what-if costs one inference, so a designer can sweep a
//! grid of candidate C4-pad sites and pick the best — exactly the loop this
//! module implements.

use crate::data::TARGET_SCALE;
use crate::model::IrPredictor;
use crate::pointcloud::PointCloud;
use lmmir_features::{spatial::spatial_restore, FeatureStack, Raster};
use lmmir_pdn::CaseSpec;
use lmmir_tensor::{Result, Var};

/// One evaluated what-if fix.
#[derive(Debug, Clone, PartialEq)]
pub struct PadFix {
    /// Candidate pad position in µm.
    pub position_um: (f64, f64),
    /// Predicted worst IR drop (volts) after inserting the pad.
    pub predicted_worst: f64,
}

/// Predicts the IR map of a case variant without running the golden solver.
///
/// # Errors
///
/// Returns tensor errors when the model and features disagree in shape.
pub fn predict_case(spec: &CaseSpec, model: &dyn IrPredictor, input_size: usize) -> Result<Raster> {
    let case = spec.generate();
    let stack = match model.input_channels() {
        6 => FeatureStack::extended(&case),
        _ => FeatureStack::basic(&case),
    };
    let (adjusted, info) = stack.adjusted_normalized(input_size);
    let mut tensor = adjusted.to_tensor();
    if model.input_channels() == 1 {
        tensor = tensor.slice_axis(0, 0, 1)?;
    }
    let d = tensor.dims().to_vec();
    let images = Var::constant(tensor.reshape(&[1, d[0], d[1], d[2]])?);
    let cloud = PointCloud::from_netlist(
        &case.netlist,
        case.tech.dbu_per_um,
        case.power.width() as f64,
        case.power.height() as f64,
    );
    let pred = model.forward(&images, model.uses_netlist().then_some(&cloud))?;
    let pt = pred.to_tensor();
    let pd = pt.dims().to_vec();
    let flat = pt.reshape(&[pd[2], pd[3]])?.scale(1.0 / TARGET_SCALE);
    Ok(spatial_restore(&Raster::from_tensor(&flat), info))
}

/// Sweeps a `grid × grid` lattice of candidate pad positions and returns all
/// fixes ranked by predicted worst drop (best first).
///
/// # Errors
///
/// Returns tensor errors from prediction.
pub fn suggest_pad_fixes(
    spec: &CaseSpec,
    model: &dyn IrPredictor,
    input_size: usize,
    grid: usize,
) -> Result<Vec<PadFix>> {
    let mut fixes = Vec::with_capacity(grid * grid);
    for gy in 0..grid {
        for gx in 0..grid {
            let x = (gx as f64 + 0.5) * spec.width as f64 / grid as f64;
            let y = (gy as f64 + 0.5) * spec.height as f64 / grid as f64;
            let mut variant = spec.clone();
            variant.extra_pads.push((x, y));
            let pred = predict_case(&variant, model, input_size)?;
            fixes.push(PadFix {
                position_um: (x, y),
                predicted_worst: f64::from(pred.max()),
            });
        }
    }
    fixes.sort_by(|a, b| {
        a.predicted_worst
            .partial_cmp(&b.predicted_worst)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(fixes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::iredge;
    use lmmir_pdn::CaseKind;
    use lmmir_solver::{solve_ir_drop, CgConfig};

    #[test]
    fn extra_pad_reduces_golden_worst_drop() {
        // Golden-oracle check of the what-if mechanism itself: adding a pad
        // at the worst-drop location must help.
        let spec = CaseSpec::new("fix", 24, 24, 31, CaseKind::Real);
        let base = spec.generate();
        let ir0 = solve_ir_drop(&base.netlist, CgConfig::default()).unwrap();
        let (mut wx, mut wy, mut worst) = (0.0, 0.0, 0.0);
        for (node, drop) in ir0.iter_drops() {
            if drop > worst {
                worst = drop;
                wx = node.x as f64 / base.tech.dbu_per_um as f64;
                wy = node.y as f64 / base.tech.dbu_per_um as f64;
            }
        }
        let mut fixed_spec = spec.clone();
        fixed_spec.extra_pads.push((wx, wy));
        let fixed = fixed_spec.generate();
        assert_eq!(
            fixed.netlist.stats().voltage_sources,
            base.netlist.stats().voltage_sources + 1
        );
        let ir1 = solve_ir_drop(&fixed.netlist, CgConfig::default()).unwrap();
        assert!(
            ir1.worst_drop() < ir0.worst_drop(),
            "pad at hotspot must reduce worst drop: {} -> {}",
            ir0.worst_drop(),
            ir1.worst_drop()
        );
    }

    #[test]
    fn predict_case_matches_truth_shape() {
        let spec = CaseSpec::new("pred", 20, 20, 3, CaseKind::Fake);
        let model = iredge(16, 4);
        let pred = predict_case(&spec, &model, 16).unwrap();
        assert_eq!(pred.width(), 20);
        assert_eq!(pred.height(), 20);
    }

    #[test]
    fn suggest_returns_sorted_grid() {
        let spec = CaseSpec::new("sweep", 16, 16, 9, CaseKind::Fake);
        let model = iredge(16, 4);
        let fixes = suggest_pad_fixes(&spec, &model, 16, 2).unwrap();
        assert_eq!(fixes.len(), 4);
        for w in fixes.windows(2) {
            assert!(w[0].predicted_worst <= w[1].predicted_worst);
        }
        // Candidates cover distinct quadrants.
        let mut positions: Vec<_> = fixes.iter().map(|f| f.position_um).collect();
        positions.sort_by(|a, b| a.partial_cmp(b).unwrap());
        positions.dedup();
        assert_eq!(positions.len(), 4);
    }
}
