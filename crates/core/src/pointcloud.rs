//! Netlist → 3-D point-cloud encoding (paper §III-B).
//!
//! Traditional flows rasterize the netlist into 2-D maps, averaging away
//! exact coordinates and inter-layer structure. LMM-IR instead keeps one
//! point per element with its full attributes: endpoint coordinates
//! `(x1, y1, x2, y2)`, element value, element type (R/I/V) and the two
//! metal layers. Vias — resistors whose endpoints differ in layer — stay
//! individually visible, which is the representational advantage the paper
//! claims over pixel methods.

use lmmir_spice::Netlist;

/// One netlist element as a point-cloud entry.
///
/// Coordinates are normalized to `[0, 1]` by the chip extent; values are
/// normalized per element kind (resistances, currents and voltages live on
/// wildly different scales).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistPoint {
    /// Normalized first-endpoint X.
    pub x1: f32,
    /// Normalized first-endpoint Y.
    pub y1: f32,
    /// Normalized second-endpoint X (first endpoint repeated for sources).
    pub x2: f32,
    /// Normalized second-endpoint Y.
    pub y2: f32,
    /// Kind-normalized element value.
    pub value: f32,
    /// Element kind code (0 = R, 1 = I, 2 = V); drives the type embedding.
    pub kind: usize,
    /// Metal layer of the first endpoint.
    pub layer1: usize,
    /// Metal layer of the second endpoint (equals `layer1` for non-vias).
    pub layer2: usize,
}

impl NetlistPoint {
    /// True when the point is a via (inter-layer resistor).
    #[must_use]
    pub fn is_via(&self) -> bool {
        self.kind == 0 && self.layer1 != self.layer2
    }

    /// Continuous feature vector `[x1, y1, x2, y2, value]`.
    #[must_use]
    pub fn features(&self) -> [f32; 5] {
        [self.x1, self.y1, self.x2, self.y2, self.value]
    }
}

/// The point-cloud representation of one netlist.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointCloud {
    /// The points, in netlist element order.
    pub points: Vec<NetlistPoint>,
}

/// Number of continuous features per point (see [`NetlistPoint::features`]).
pub const POINT_FEATURES: usize = 5;

/// Maximum metal layer id supported by the layer embedding table.
pub const MAX_LAYERS: usize = 16;

impl PointCloud {
    /// Encodes a netlist into a point cloud.
    ///
    /// `width_um`/`height_um` define the normalization extent;
    /// `dbu_per_um` converts node coordinates.
    ///
    /// Element values are scaled by the mean absolute value of their kind
    /// within this netlist, making the cloud invariant to global unit
    /// choices while preserving relative magnitudes.
    #[must_use]
    pub fn from_netlist(netlist: &Netlist, dbu_per_um: i64, width_um: f64, height_um: f64) -> Self {
        let wd = (width_um * dbu_per_um as f64).max(1.0);
        let hd = (height_um * dbu_per_um as f64).max(1.0);
        // Per-kind mean |value| for normalization.
        let mut sums = [0.0f64; 3];
        let mut counts = [0usize; 3];
        for e in netlist.iter() {
            let k = e.kind.code();
            sums[k] += e.value.abs();
            counts[k] += 1;
        }
        let scales: Vec<f64> = (0..3)
            .map(|k| {
                if counts[k] > 0 && sums[k] > 0.0 {
                    sums[k] / counts[k] as f64
                } else {
                    1.0
                }
            })
            .collect();
        let mut points = Vec::with_capacity(netlist.len());
        for e in netlist.iter() {
            let a = e.a.name();
            let b = e.b.name();
            // Sources have one grounded terminal: repeat the node endpoint.
            let (pa, pb) = match (a, b) {
                (Some(a), Some(b)) => (a, b),
                (Some(a), None) => (a, a),
                (None, Some(b)) => (b, b),
                (None, None) => continue,
            };
            let k = e.kind.code();
            points.push(NetlistPoint {
                x1: (pa.x as f64 / wd) as f32,
                y1: (pa.y as f64 / hd) as f32,
                x2: (pb.x as f64 / wd) as f32,
                y2: (pb.y as f64 / hd) as f32,
                value: (e.value / scales[k]) as f32,
                kind: k,
                layer1: (pa.layer as usize).min(MAX_LAYERS - 1),
                layer2: (pb.layer as usize).min(MAX_LAYERS - 1),
            });
        }
        PointCloud { points }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the cloud has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of vias in the cloud.
    #[must_use]
    pub fn via_count(&self) -> usize {
        self.points.iter().filter(|p| p.is_via()).count()
    }

    /// Importance-aware deterministic subsampling to at most `max_points`.
    ///
    /// Points are kept in strict priority tiers — voltage sources (pads
    /// anchor the whole field and are few), then vias (inter-layer
    /// resistance topology), then current sources (loads), then plain wire
    /// resistors — with stride sampling inside whichever tier exhausts the
    /// budget. Deterministic, so a given case always produces the same
    /// cloud.
    #[must_use]
    pub fn subsample(&self, max_points: usize) -> PointCloud {
        if self.points.len() <= max_points {
            return self.clone();
        }
        let tier = |p: &NetlistPoint| -> usize {
            if p.kind == 2 {
                0 // pads
            } else if p.is_via() {
                1
            } else if p.kind == 1 {
                2 // loads
            } else {
                3 // wires
            }
        };
        let mut tiers: [Vec<NetlistPoint>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for p in &self.points {
            tiers[tier(p)].push(*p);
        }
        let mut out = Vec::with_capacity(max_points);
        for t in tiers {
            let remaining = max_points - out.len();
            if remaining == 0 {
                break;
            }
            out.extend(stride_sample(&t, remaining));
        }
        PointCloud { points: out }
    }

    /// Packs continuous features into a `[len, 5]` matrix plus the discrete
    /// kind/layer index vectors for the embeddings.
    #[must_use]
    pub fn to_features(&self) -> (Vec<f32>, Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut feats = Vec::with_capacity(self.points.len() * POINT_FEATURES);
        let mut kinds = Vec::with_capacity(self.points.len());
        let mut l1 = Vec::with_capacity(self.points.len());
        let mut l2 = Vec::with_capacity(self.points.len());
        for p in &self.points {
            feats.extend_from_slice(&p.features());
            kinds.push(p.kind);
            l1.push(p.layer1);
            l2.push(p.layer2);
        }
        (feats, kinds, l1, l2)
    }
}

fn stride_sample(points: &[NetlistPoint], budget: usize) -> Vec<NetlistPoint> {
    if budget == 0 || points.is_empty() {
        return Vec::new();
    }
    if points.len() <= budget {
        return points.to_vec();
    }
    let step = points.len() as f64 / budget as f64;
    (0..budget)
        .map(|i| points[(i as f64 * step) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_pdn::{CaseKind, CaseSpec};

    fn cloud() -> (PointCloud, lmmir_pdn::Case) {
        let case = CaseSpec::new("t", 20, 20, 3, CaseKind::Fake).generate();
        let pc = PointCloud::from_netlist(&case.netlist, case.tech.dbu_per_um, 20.0, 20.0);
        (pc, case)
    }

    #[test]
    fn cloud_covers_all_elements() {
        let (pc, case) = cloud();
        assert_eq!(pc.len(), case.netlist.len());
        assert_eq!(pc.via_count(), case.netlist.stats().vias);
    }

    #[test]
    fn coordinates_normalized() {
        let (pc, _) = cloud();
        for p in &pc.points {
            assert!((0.0..=1.05).contains(&p.x1), "x1 {}", p.x1);
            assert!((0.0..=1.05).contains(&p.y2), "y2 {}", p.y2);
        }
    }

    #[test]
    fn values_normalized_per_kind() {
        let (pc, _) = cloud();
        // Mean |value| per kind should be ~1 after normalization.
        for k in 0..3 {
            let vals: Vec<f32> = pc
                .points
                .iter()
                .filter(|p| p.kind == k)
                .map(|p| p.value.abs())
                .collect();
            if vals.is_empty() {
                continue;
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!((mean - 1.0).abs() < 0.05, "kind {k} mean {mean}");
        }
    }

    #[test]
    fn sources_repeat_endpoint() {
        let (pc, _) = cloud();
        let src = pc.points.iter().find(|p| p.kind == 1).unwrap();
        assert_eq!(src.x1, src.x2);
        assert_eq!(src.y1, src.y2);
        assert!(!src.is_via());
    }

    #[test]
    fn subsample_keeps_critical_points() {
        let (pc, case) = cloud();
        // Budget above the critical set but below the full cloud: all
        // critical points must survive and wires fill the rest.
        let critical = pc
            .points
            .iter()
            .filter(|p| p.kind != 0 || p.is_via())
            .count();
        assert!(critical < pc.len(), "case should have plain wires");
        let budget = critical + (pc.len() - critical) / 2;
        let sub = pc.subsample(budget);
        assert_eq!(sub.len(), budget);
        // All pads survive.
        let pads = sub.points.iter().filter(|p| p.kind == 2).count();
        assert_eq!(pads, case.netlist.stats().voltage_sources);
        // Vias survive.
        assert_eq!(sub.via_count(), pc.via_count());
    }

    #[test]
    fn subsample_noop_when_under_budget() {
        let (pc, _) = cloud();
        let sub = pc.subsample(pc.len() + 10);
        assert_eq!(sub, pc);
    }

    #[test]
    fn subsample_is_deterministic() {
        let (pc, _) = cloud();
        assert_eq!(pc.subsample(100), pc.subsample(100));
    }

    #[test]
    fn subsample_handles_tiny_budget() {
        let (pc, _) = cloud();
        let sub = pc.subsample(5);
        assert_eq!(sub.len(), 5);
    }

    #[test]
    fn features_pack_shapes() {
        let (pc, _) = cloud();
        let (f, k, l1, l2) = pc.to_features();
        assert_eq!(f.len(), pc.len() * POINT_FEATURES);
        assert_eq!(k.len(), pc.len());
        assert_eq!(l1.len(), pc.len());
        assert_eq!(l2.len(), pc.len());
        assert!(k.iter().all(|&x| x < 3));
        assert!(l1.iter().all(|&x| x < MAX_LAYERS));
    }

    #[test]
    fn empty_netlist_gives_empty_cloud() {
        let nl = lmmir_spice::Netlist::new();
        let pc = PointCloud::from_netlist(&nl, 2000, 10.0, 10.0);
        assert!(pc.is_empty());
    }
}
