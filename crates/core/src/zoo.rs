//! Comprehensive-feature model-zoo variants: a CFIRSTNET-style plain U-Net
//! and the WACA-UNet channel-attention variant.
//!
//! Both consume the 8-channel **comprehensive** feature stack
//! (`lmmir_features::FeatureStack::comprehensive`, after CFIRSTNET,
//! arXiv:2502.12168): the extended 6-channel stack plus the
//! effective-resistance and pad-distance maps. They differ only in the
//! skip-connection treatment:
//!
//! * [`CfirstNet`] — a plain U-Net trunk (no gates), betting entirely on
//!   the richer input features.
//! * [`WacaUnet`] — the same trunk with a weak-aware channel-attention
//!   block ([`lmmir_nn::ChannelAttention`], after WACA-UNet,
//!   arXiv:2507.19197) recalibrating every encoder feature before the
//!   decoder consumes it.

use crate::arch::{ArchConfig, ArchSpec};
use crate::blocks::{UNetDecoder, UNetEncoder};
use crate::model::IrPredictor;
use crate::pointcloud::PointCloud;
use lmmir_nn::{ChannelAttention, Module};
use lmmir_tensor::{Result, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the CFIRSTNET-style comprehensive-feature U-Net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfirstNetConfig {
    /// Input image channels (8 for the comprehensive stack).
    pub in_channels: usize,
    /// Encoder/decoder channel plan; `len - 1` pooling stages.
    pub widths: Vec<usize>,
    /// Stem kernel size.
    pub stem_kernel: usize,
    /// Square input size the model trains at.
    pub input_size: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl CfirstNetConfig {
    /// Laptop-scale preset matching the other `quick()` models.
    #[must_use]
    pub fn quick() -> Self {
        CfirstNetConfig {
            in_channels: 8,
            widths: vec![8, 16, 32],
            stem_kernel: 3,
            input_size: 48,
            seed: 0xCF12,
        }
    }

    /// Validates internal consistency (pooling divisibility, non-empty plan).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.widths.len() < 2 {
            return Err("need at least two widths (one pooling stage)".to_string());
        }
        let pools = self.widths.len() - 1;
        if self.input_size % (1 << pools) != 0 {
            return Err(format!(
                "input size {} not divisible by 2^{pools}",
                self.input_size
            ));
        }
        if self.in_channels == 0 {
            return Err("in_channels must be positive".to_string());
        }
        Ok(())
    }
}

/// CFIRSTNET-style predictor: plain U-Net over the comprehensive stack.
#[derive(Debug)]
pub struct CfirstNet {
    cfg: CfirstNetConfig,
    encoder: UNetEncoder,
    decoder: UNetDecoder,
}

impl CfirstNet {
    /// Builds the model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`CfirstNetConfig::validate`]) — configurations are
    /// programmer-supplied; checkpoint-supplied ones go through
    /// [`ArchSpec::build`], which validates first.
    #[must_use]
    pub fn new(cfg: CfirstNetConfig) -> Self {
        cfg.validate().expect("valid CFIRSTNET configuration");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let encoder = UNetEncoder::new(cfg.in_channels, &cfg.widths, cfg.stem_kernel, &mut rng);
        let decoder = UNetDecoder::new(&cfg.widths, 1, false, &mut rng);
        CfirstNet {
            cfg,
            encoder,
            decoder,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &CfirstNetConfig {
        &self.cfg
    }
}

impl IrPredictor for CfirstNet {
    fn arch(&self) -> ArchSpec {
        ArchSpec::CfirstNet
    }

    fn input_channels(&self) -> usize {
        self.cfg.in_channels
    }

    fn input_size(&self) -> usize {
        self.cfg.input_size
    }

    fn arch_config(&self) -> Option<ArchConfig> {
        Some(ArchConfig::Cfirst(self.cfg.clone()))
    }

    fn forward(&self, images: &Var, _cloud: Option<&PointCloud>) -> Result<Var> {
        self.decoder.decode(&self.encoder.encode(images)?)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.encoder.parameters();
        p.extend(self.decoder.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.encoder.set_training(training);
        self.decoder.set_training(training);
    }

    fn quantize(&self) -> usize {
        self.encoder.quantize() + self.decoder.quantize()
    }
}

/// Configuration of the WACA-UNet variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WacaUnetConfig {
    /// Input image channels (8 for the comprehensive stack).
    pub in_channels: usize,
    /// Encoder/decoder channel plan; `len - 1` pooling stages.
    pub widths: Vec<usize>,
    /// Stem kernel size.
    pub stem_kernel: usize,
    /// Squeeze-excitation reduction ratio of every channel-attention block.
    pub reduction: usize,
    /// Square input size the model trains at.
    pub input_size: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl WacaUnetConfig {
    /// Laptop-scale preset matching the other `quick()` models.
    #[must_use]
    pub fn quick() -> Self {
        WacaUnetConfig {
            in_channels: 8,
            widths: vec![8, 16, 32],
            stem_kernel: 3,
            reduction: 4,
            input_size: 48,
            seed: 0x3ACA,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.widths.len() < 2 {
            return Err("need at least two widths (one pooling stage)".to_string());
        }
        let pools = self.widths.len() - 1;
        if self.input_size % (1 << pools) != 0 {
            return Err(format!(
                "input size {} not divisible by 2^{pools}",
                self.input_size
            ));
        }
        if self.in_channels == 0 {
            return Err("in_channels must be positive".to_string());
        }
        if self.reduction == 0 {
            return Err("reduction must be positive".to_string());
        }
        Ok(())
    }
}

/// WACA-UNet predictor: the CFIRSTNET trunk with weak-aware channel
/// attention recalibrating every encoder feature (skips *and* bottleneck)
/// before decoding.
#[derive(Debug)]
pub struct WacaUnet {
    cfg: WacaUnetConfig,
    encoder: UNetEncoder,
    attn: Vec<ChannelAttention>,
    decoder: UNetDecoder,
}

impl WacaUnet {
    /// Builds the model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`WacaUnetConfig::validate`]).
    #[must_use]
    pub fn new(cfg: WacaUnetConfig) -> Self {
        cfg.validate().expect("valid WACA-UNet configuration");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let encoder = UNetEncoder::new(cfg.in_channels, &cfg.widths, cfg.stem_kernel, &mut rng);
        let attn = cfg
            .widths
            .iter()
            .map(|&w| ChannelAttention::new(w, cfg.reduction, &mut rng))
            .collect();
        let decoder = UNetDecoder::new(&cfg.widths, 1, false, &mut rng);
        WacaUnet {
            cfg,
            encoder,
            attn,
            decoder,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &WacaUnetConfig {
        &self.cfg
    }
}

impl IrPredictor for WacaUnet {
    fn arch(&self) -> ArchSpec {
        ArchSpec::WacaUnet
    }

    fn input_channels(&self) -> usize {
        self.cfg.in_channels
    }

    fn input_size(&self) -> usize {
        self.cfg.input_size
    }

    fn arch_config(&self) -> Option<ArchConfig> {
        Some(ArchConfig::Waca(self.cfg.clone()))
    }

    fn forward(&self, images: &Var, _cloud: Option<&PointCloud>) -> Result<Var> {
        let mut features = self.encoder.encode(images)?;
        for (f, a) in features.iter_mut().zip(&self.attn) {
            *f = a.forward(f)?;
        }
        self.decoder.decode(&features)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.encoder.parameters();
        for a in &self.attn {
            p.extend(a.parameters());
        }
        p.extend(self.decoder.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.encoder.set_training(training);
        for a in &self.attn {
            a.set_training(training);
        }
        self.decoder.set_training(training);
    }

    fn quantize(&self) -> usize {
        self.encoder.quantize()
            + self.attn.iter().map(Module::quantize).sum::<usize>()
            + self.decoder.quantize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_tensor::Tensor;

    fn tiny_cfirst() -> CfirstNetConfig {
        CfirstNetConfig {
            widths: vec![4, 8],
            input_size: 16,
            ..CfirstNetConfig::quick()
        }
    }

    fn tiny_waca() -> WacaUnetConfig {
        WacaUnetConfig {
            widths: vec![4, 8],
            reduction: 2,
            input_size: 16,
            ..WacaUnetConfig::quick()
        }
    }

    #[test]
    fn forward_shapes_and_identity() {
        let x = Var::constant(Tensor::zeros(&[1, 8, 16, 16]));
        let c = CfirstNet::new(tiny_cfirst());
        assert_eq!(c.forward(&x, None).unwrap().dims(), vec![1, 1, 16, 16]);
        assert_eq!(c.arch(), ArchSpec::CfirstNet);
        assert_eq!(c.name(), "CFIRSTNET");
        assert!(!c.uses_netlist(), "the netlist feeds features, not forward");
        assert!(matches!(c.arch_config(), Some(ArchConfig::Cfirst(_))));
        let w = WacaUnet::new(tiny_waca());
        assert_eq!(w.forward(&x, None).unwrap().dims(), vec![1, 1, 16, 16]);
        assert_eq!(w.arch(), ArchSpec::WacaUnet);
        assert_eq!(w.name(), "WACA-UNet");
        assert!(matches!(w.arch_config(), Some(ArchConfig::Waca(_))));
    }

    #[test]
    fn waca_attention_adds_parameters_over_cfirst() {
        let c = CfirstNet::new(tiny_cfirst());
        let w = WacaUnet::new(tiny_waca());
        assert!(
            w.parameters().len() > c.parameters().len(),
            "one attention block per encoder level must show up"
        );
        let per_level = 4; // two linear layers with bias each
        assert_eq!(
            w.parameters().len() - c.parameters().len(),
            per_level * tiny_waca().widths.len()
        );
    }

    #[test]
    fn deterministic_construction() {
        for (a, b) in [(WacaUnet::new(tiny_waca()), WacaUnet::new(tiny_waca()))] {
            let (pa, pb) = (a.parameters(), b.parameters());
            assert_eq!(pa.len(), pb.len());
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.value().data(), y.value().data());
            }
        }
    }

    #[test]
    fn gradients_flow_everywhere() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Var::constant(lmmir_tensor::init::uniform(&[1, 8, 16, 16], 1.0, &mut rng));
        for m in [
            Box::new(CfirstNet::new(tiny_cfirst())) as Box<dyn IrPredictor>,
            Box::new(WacaUnet::new(tiny_waca())),
        ] {
            m.forward(&x, None).unwrap().sum().backward();
            let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
            assert_eq!(missing, 0, "{}: every parameter gets gradient", m.name());
        }
    }

    #[test]
    fn config_validation() {
        assert!(CfirstNetConfig::quick().validate().is_ok());
        assert!(WacaUnetConfig::quick().validate().is_ok());
        let bad = CfirstNetConfig {
            input_size: 47,
            ..CfirstNetConfig::quick()
        };
        assert!(bad.validate().is_err());
        let bad = WacaUnetConfig {
            reduction: 0,
            ..WacaUnetConfig::quick()
        };
        assert!(bad.validate().is_err());
        let bad = WacaUnetConfig {
            widths: vec![8],
            ..WacaUnetConfig::quick()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn quantize_covers_trunk_and_attention() {
        let c = CfirstNet::new(tiny_cfirst());
        let w = WacaUnet::new(tiny_waca());
        let (qc, qw) = (c.quantize(), w.quantize());
        assert!(qc > 0);
        assert_eq!(
            qw,
            qc + 2 * tiny_waca().widths.len(),
            "each attention block quantizes its two linear layers"
        );
    }
}
