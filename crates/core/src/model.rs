//! The LMM-IR model: circuit encoder + LNT + cross-attention fusion +
//! multimodal decoder (paper §III, Fig. 2).

use crate::blocks::{UNetDecoder, UNetEncoder};
use crate::lnt::{Lnt, LntConfig};
use crate::pointcloud::PointCloud;
use lmmir_nn::{Conv2d, Linear, Module, MultiHeadAttention};
use lmmir_tensor::conv::ConvSpec;
use lmmir_tensor::{Result, TensorError, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common interface of every IR-drop predictor in the reproduction
/// (LMM-IR and all baselines), so the trainer and the benchmark harness
/// treat them uniformly.
pub trait IrPredictor {
    /// The architecture descriptor this model is an instance of — the
    /// single identity the registry, the checkpoint layer and the benchmark
    /// harness dispatch on.
    fn arch(&self) -> crate::arch::ArchSpec;

    /// Model name as used in the paper's tables (derived from the
    /// descriptor; never override).
    fn name(&self) -> &'static str {
        self.arch().name()
    }

    /// Number of input image channels the model expects.
    fn input_channels(&self) -> usize;

    /// Square input size the model was configured for.
    fn input_size(&self) -> usize;

    /// Whether the model consumes the netlist modality.
    fn uses_netlist(&self) -> bool {
        false
    }

    /// The full family-tagged configuration, for models that carry one.
    /// Baselines return `None` — their architecture is fully determined by
    /// name, channel count and input size. Checkpoint format v3+ serializes
    /// this into a `config.*` entry, so a trained non-`quick()` model
    /// reconstructs exactly.
    fn arch_config(&self) -> Option<crate::arch::ArchConfig> {
        None
    }

    /// Predicts an IR-drop map `[N, 1, H, W]` from images `[N, C, H, W]`
    /// and (for multimodal models) the netlist point cloud.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched inputs.
    fn forward(&self, images: &Var, cloud: Option<&PointCloud>) -> Result<Var>;

    /// All trainable parameters.
    fn parameters(&self) -> Vec<Var>;

    /// Switches train/eval mode.
    fn set_training(&self, training: bool);

    /// Switches every eligible layer to int8 inference (per-output-channel
    /// weight scales, dynamic per-tensor activation scales), returning how
    /// many layers now run quantized. Quantized state is inference-only and
    /// is dropped by `set_training(true)`. The default supports predictors
    /// without an int8 path (returns 0 so callers can detect it).
    fn quantize(&self) -> usize {
        0
    }
}

/// Cross-attention fusion of circuit tokens (queries) with netlist tokens
/// (keys/values), as in the paper's "Netlist & Image Alignment and fusion"
/// stage.
#[derive(Debug)]
pub struct FusionModule {
    kv_proj: Linear,
    cross: MultiHeadAttention,
    mix: Conv2d,
}

impl FusionModule {
    /// Builds a fusion module for a bottleneck of `channels` and netlist
    /// tokens of width `lnt_dim`.
    #[must_use]
    pub fn new(channels: usize, lnt_dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        FusionModule {
            kv_proj: Linear::new(lnt_dim, channels, true, rng),
            cross: MultiHeadAttention::new(channels, heads, rng),
            mix: Conv2d::new(channels, channels, 1, ConvSpec::new(1, 0), true, rng),
        }
    }

    /// Fuses netlist tokens into the bottleneck feature map (residual):
    /// every spatial position attends over all netlist tokens.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for a non-singleton batch (the
    /// cloud is per-sample) or mismatched widths.
    pub fn fuse(&self, bottleneck: &Var, tokens: &Var) -> Result<Var> {
        let d = bottleneck.dims();
        if d.len() != 4 || d[0] != 1 {
            return Err(TensorError::InvalidShape {
                dims: d,
                reason: "fusion expects a [1, C, H, W] bottleneck".to_string(),
            });
        }
        let (c, h, w) = (d[1], d[2], d[3]);
        let q = bottleneck.reshape(&[1, c, h * w])?.permute(&[0, 2, 1])?;
        let kv = self.kv_proj.forward(tokens)?;
        let fused = self.cross.forward_qkv(&q, &kv, &kv)?;
        let fused = fused.permute(&[0, 2, 1])?.reshape(&[1, c, h, w])?;
        let residual = bottleneck.add(&fused)?;
        Ok(self.mix.forward(&residual)?.relu())
    }

    /// Trainable parameters.
    #[must_use]
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.kv_proj.parameters();
        p.extend(self.cross.parameters());
        p.extend(self.mix.parameters());
        p
    }

    /// Propagates train/eval mode to the fusion sub-layers.
    pub fn set_training(&self, training: bool) {
        self.kv_proj.set_training(training);
        self.cross.set_training(training);
        self.mix.set_training(training);
    }

    /// Quantizes the fusion projections (see [`Module::quantize`]).
    pub fn quantize(&self) -> usize {
        self.kv_proj.quantize() + self.cross.quantize() + self.mix.quantize()
    }
}

/// Configuration of the LMM-IR model.
///
/// The ablation switches map to the paper's Fig. 4 configurations:
/// `use_lnt = false` → "W-LNT"; `use_attention_gates = false` → "W-Att";
/// both off and 3 input channels → "EC" (plain encoder-decoder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmmIrConfig {
    /// Input image channels (6 for the paper's extended stack).
    pub in_channels: usize,
    /// Encoder/decoder channel plan; `len - 1` pooling stages.
    pub widths: Vec<usize>,
    /// Stem kernel size (7 in the paper).
    pub stem_kernel: usize,
    /// LNT hyper-parameters.
    pub lnt: LntConfig,
    /// Enable the netlist branch + fusion.
    pub use_lnt: bool,
    /// Enable attention gates on decoder skips.
    pub use_attention_gates: bool,
    /// Square input size the model trains at (512 in the paper).
    pub input_size: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl LmmIrConfig {
    /// Laptop-scale preset for the reproduction harness.
    #[must_use]
    pub fn quick() -> Self {
        LmmIrConfig {
            in_channels: 6,
            widths: vec![12, 24, 48],
            stem_kernel: 7,
            lnt: LntConfig::quick(),
            use_lnt: true,
            use_attention_gates: true,
            input_size: 48,
            seed: 0xA11CE,
        }
    }

    /// Paper-scale preset (512×512 inputs, 4 pooling stages, full LNT).
    #[must_use]
    pub fn paper() -> Self {
        LmmIrConfig {
            in_channels: 6,
            widths: vec![64, 128, 256, 512, 512],
            stem_kernel: 7,
            lnt: LntConfig::paper(),
            use_lnt: true,
            use_attention_gates: true,
            input_size: 512,
            seed: 0xA11CE,
        }
    }

    /// Validates internal consistency (pooling divisibility, non-empty plan).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.widths.len() < 2 {
            return Err("need at least two widths (one pooling stage)".to_string());
        }
        let pools = self.widths.len() - 1;
        if self.input_size % (1 << pools) != 0 {
            return Err(format!(
                "input size {} not divisible by 2^{pools}",
                self.input_size
            ));
        }
        if self.in_channels == 0 {
            return Err("in_channels must be positive".to_string());
        }
        Ok(())
    }
}

/// The LMM-IR model.
#[derive(Debug)]
pub struct LmmIr {
    cfg: LmmIrConfig,
    encoder: UNetEncoder,
    lnt: Option<Lnt>,
    fusion: Option<FusionModule>,
    decoder: UNetDecoder,
}

impl LmmIr {
    /// Builds the model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`LmmIrConfig::validate`]) — configurations are programmer-supplied.
    #[must_use]
    pub fn new(cfg: LmmIrConfig) -> Self {
        cfg.validate().expect("valid LMM-IR configuration");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let encoder = UNetEncoder::new(cfg.in_channels, &cfg.widths, cfg.stem_kernel, &mut rng);
        let bottleneck = *cfg.widths.last().expect("non-empty widths");
        let (lnt, fusion) = if cfg.use_lnt {
            let lnt = Lnt::new(cfg.lnt, &mut rng);
            let heads = cfg.lnt.heads.min(bottleneck);
            let heads = (1..=heads).rev().find(|h| bottleneck % h == 0).unwrap_or(1);
            (
                Some(lnt),
                Some(FusionModule::new(
                    bottleneck,
                    cfg.lnt.d_model,
                    heads,
                    &mut rng,
                )),
            )
        } else {
            (None, None)
        };
        let decoder = UNetDecoder::new(&cfg.widths, 1, cfg.use_attention_gates, &mut rng);
        LmmIr {
            cfg,
            encoder,
            lnt,
            fusion,
            decoder,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &LmmIrConfig {
        &self.cfg
    }
}

impl IrPredictor for LmmIr {
    fn arch(&self) -> crate::arch::ArchSpec {
        crate::arch::ArchSpec::LmmIr
    }

    fn input_channels(&self) -> usize {
        self.cfg.in_channels
    }

    fn input_size(&self) -> usize {
        self.cfg.input_size
    }

    fn uses_netlist(&self) -> bool {
        self.cfg.use_lnt
    }

    fn arch_config(&self) -> Option<crate::arch::ArchConfig> {
        Some(crate::arch::ArchConfig::LmmIr(self.cfg.clone()))
    }

    fn forward(&self, images: &Var, cloud: Option<&PointCloud>) -> Result<Var> {
        let mut features = self.encoder.encode(images)?;
        if let (Some(lnt), Some(fusion), Some(cloud)) = (&self.lnt, &self.fusion, cloud) {
            let tokens = lnt.encode_cloud(cloud)?;
            let bottleneck = features.last().expect("encoder output").clone();
            let fused = fusion.fuse(&bottleneck, &tokens)?;
            *features.last_mut().expect("encoder output") = fused;
        }
        self.decoder.decode(&features)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.encoder.parameters();
        if let Some(lnt) = &self.lnt {
            p.extend(lnt.parameters());
        }
        if let Some(f) = &self.fusion {
            p.extend(f.parameters());
        }
        p.extend(self.decoder.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.encoder.set_training(training);
        if let Some(lnt) = &self.lnt {
            lnt.set_training(training);
        }
        if let Some(f) = &self.fusion {
            f.set_training(training);
        }
        self.decoder.set_training(training);
    }

    fn quantize(&self) -> usize {
        let mut n = self.encoder.quantize();
        if let Some(lnt) = &self.lnt {
            n += lnt.quantize();
        }
        if let Some(f) = &self.fusion {
            n += f.quantize();
        }
        n + self.decoder.quantize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_pdn::{CaseKind, CaseSpec};
    use lmmir_tensor::Tensor;

    fn tiny_cfg() -> LmmIrConfig {
        LmmIrConfig {
            in_channels: 6,
            widths: vec![4, 8],
            stem_kernel: 3,
            lnt: LntConfig {
                d_model: 8,
                heads: 2,
                layers: 1,
                max_points: 64,
                chunk: 64,
                ff_mult: 2,
            },
            use_lnt: true,
            use_attention_gates: true,
            input_size: 16,
            seed: 1,
        }
    }

    fn cloud() -> PointCloud {
        let case = CaseSpec::new("t", 16, 16, 4, CaseKind::Fake).generate();
        PointCloud::from_netlist(&case.netlist, case.tech.dbu_per_um, 16.0, 16.0)
    }

    #[test]
    fn forward_shapes() {
        let m = LmmIr::new(tiny_cfg());
        let x = Var::constant(Tensor::zeros(&[1, 6, 16, 16]));
        let y = m.forward(&x, Some(&cloud())).unwrap();
        assert_eq!(y.dims(), vec![1, 1, 16, 16]);
        assert!(m.uses_netlist());
        assert_eq!(m.name(), "LMM-IR");
    }

    #[test]
    fn forward_without_cloud_still_works() {
        let m = LmmIr::new(tiny_cfg());
        let x = Var::constant(Tensor::zeros(&[1, 6, 16, 16]));
        let y = m.forward(&x, None).unwrap();
        assert_eq!(y.dims(), vec![1, 1, 16, 16]);
    }

    #[test]
    fn ablated_model_has_fewer_parameters() {
        let full = LmmIr::new(tiny_cfg());
        let mut cfg = tiny_cfg();
        cfg.use_lnt = false;
        let no_lnt = LmmIr::new(cfg);
        assert!(no_lnt.parameters().len() < full.parameters().len());
        assert!(!no_lnt.uses_netlist());
        let mut cfg2 = tiny_cfg();
        cfg2.use_attention_gates = false;
        let no_att = LmmIr::new(cfg2);
        assert!(no_att.parameters().len() < full.parameters().len());
    }

    #[test]
    fn config_validation() {
        assert!(LmmIrConfig::quick().validate().is_ok());
        assert!(LmmIrConfig::paper().validate().is_ok());
        let mut bad = LmmIrConfig::quick();
        bad.input_size = 47; // not divisible by 4
        assert!(bad.validate().is_err());
        let mut bad2 = LmmIrConfig::quick();
        bad2.widths = vec![8];
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn gradients_reach_both_modalities() {
        let m = LmmIr::new(tiny_cfg());
        let x = Var::constant(lmmir_tensor::init::uniform(
            &[1, 6, 16, 16],
            1.0,
            &mut rand::rngs::StdRng::seed_from_u64(9),
        ));
        m.forward(&x, Some(&cloud())).unwrap().sum().backward();
        let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0, "all parameters should receive gradient");
    }

    #[test]
    fn deterministic_construction() {
        let a = LmmIr::new(tiny_cfg());
        let b = LmmIr::new(tiny_cfg());
        let pa = a.parameters();
        let pb = b.parameters();
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.value().data(), y.value().data());
        }
    }

    #[test]
    fn fusion_rejects_batched_bottleneck() {
        let mut rng = StdRng::seed_from_u64(0);
        let f = FusionModule::new(8, 8, 2, &mut rng);
        let b = Var::constant(Tensor::zeros(&[2, 8, 4, 4]));
        let t = Var::constant(Tensor::zeros(&[1, 4, 8]));
        assert!(f.fuse(&b, &t).is_err());
    }
}
