//! Dynamic IR-drop prediction (PowerNet-style, Xie et al.).
//!
//! Static IR drop asks "what does the average draw do"; dynamic IR asks
//! "what does the worst instant do". PowerNet's decomposition: split the
//! switching activity into W time windows, build one toggle-weighted power
//! map per window, run a *shared* CNN over every window and take the
//! elementwise **max over windows** as the prediction — worst-case IR per
//! pixel, whichever window causes it.
//!
//! [`DynamicIrPredictor`] implements that head on this repo's substrate: a
//! shared U-Net trunk (1 input channel) applied per window via
//! differentiable channel slicing, combined with `max(a, b) = a + relu(b−a)`
//! so gradients flow to every window's pass. It registers as a second model
//! family ("DynIR") behind the same [`IrPredictor`] interface the serving
//! registry dispatches on, and checkpoints through a v4-compatible
//! `config.dynamic` entry.

use crate::data::TARGET_SCALE;
use crate::model::IrPredictor;
use crate::pointcloud::PointCloud;
use crate::train::{TrainConfig, TrainReport};
use lmmir_features::{ir_drop_map, Raster, SpatialInfo, WindowStack};
use lmmir_nn::Module;
use lmmir_pdn::{CaseKind, CaseSpec, DynamicCase, MAX_WINDOWS};
use lmmir_solver::{solve_ir_drop, CgConfig, SolveIrDropError};
use lmmir_tensor::{Adam, GradClip, Optimizer, Result, Tensor, TensorError, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::blocks::{UNetDecoder, UNetEncoder};

/// Configuration of the dynamic (PowerNet-style) predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicIrConfig {
    /// Number of time windows W the model consumes (= input channels).
    pub windows: usize,
    /// Shared-trunk channel plan; `len - 1` pooling stages.
    pub widths: Vec<usize>,
    /// Stem kernel size of the trunk.
    pub stem_kernel: usize,
    /// Square input size the model trains at.
    pub input_size: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl DynamicIrConfig {
    /// Laptop-scale preset for the reproduction harness.
    #[must_use]
    pub fn quick() -> Self {
        DynamicIrConfig {
            windows: 4,
            widths: vec![8, 16, 32],
            stem_kernel: 3,
            input_size: 48,
            seed: 0xD1A0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.windows == 0 || self.windows > MAX_WINDOWS {
            return Err(format!(
                "window count {} out of 1..={MAX_WINDOWS}",
                self.windows
            ));
        }
        if self.widths.len() < 2 {
            return Err("need at least two widths (one pooling stage)".to_string());
        }
        let pools = self.widths.len() - 1;
        if self.input_size % (1 << pools) != 0 {
            return Err(format!(
                "input size {} not divisible by 2^{pools}",
                self.input_size
            ));
        }
        Ok(())
    }
}

/// The PowerNet-style dynamic predictor: shared U-Net trunk per window,
/// elementwise max over the per-window predictions.
#[derive(Debug)]
pub struct DynamicIrPredictor {
    cfg: DynamicIrConfig,
    encoder: UNetEncoder,
    decoder: UNetDecoder,
}

impl DynamicIrPredictor {
    /// Builds the model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`DynamicIrConfig::validate`]) — configurations are
    /// programmer-supplied.
    #[must_use]
    pub fn new(cfg: DynamicIrConfig) -> Self {
        cfg.validate().expect("valid dynamic configuration");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let encoder = UNetEncoder::new(1, &cfg.widths, cfg.stem_kernel, &mut rng);
        let decoder = UNetDecoder::new(&cfg.widths, 1, false, &mut rng);
        DynamicIrPredictor {
            cfg,
            encoder,
            decoder,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &DynamicIrConfig {
        &self.cfg
    }

    /// One shared-trunk pass over a single window `[1, 1, S, S]`.
    fn trunk(&self, window: &Var) -> Result<Var> {
        let features = self.encoder.encode(window)?;
        self.decoder.decode(&features)
    }
}

/// Differentiable elementwise max: `max(a, b) = a + relu(b − a)`. Where
/// `b > a` the gradient routes to `b`'s window pass, elsewhere to `a`'s —
/// every window that wins somewhere trains.
fn elementwise_max(a: &Var, b: &Var) -> Result<Var> {
    a.add(&b.sub(a)?.relu())
}

impl IrPredictor for DynamicIrPredictor {
    fn arch(&self) -> crate::arch::ArchSpec {
        crate::arch::ArchSpec::DynIr
    }

    fn input_channels(&self) -> usize {
        self.cfg.windows
    }

    fn input_size(&self) -> usize {
        self.cfg.input_size
    }

    fn arch_config(&self) -> Option<crate::arch::ArchConfig> {
        Some(crate::arch::ArchConfig::Dynamic(self.cfg.clone()))
    }

    fn forward(&self, images: &Var, _cloud: Option<&PointCloud>) -> Result<Var> {
        let d = images.dims();
        if d.len() != 4 || d[0] != 1 || d[1] != self.cfg.windows {
            return Err(TensorError::InvalidShape {
                dims: d,
                reason: format!(
                    "dynamic predictor expects [1, {}, S, S] window maps",
                    self.cfg.windows
                ),
            });
        }
        let mut worst: Option<Var> = None;
        for w in 0..self.cfg.windows {
            let window = images.slice_axis(1, w, w + 1)?;
            let pred = self.trunk(&window)?;
            worst = Some(match worst {
                None => pred,
                Some(acc) => elementwise_max(&acc, &pred)?,
            });
        }
        Ok(worst.expect("windows >= 1 by validation"))
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.encoder.parameters();
        p.extend(self.decoder.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.encoder.set_training(training);
        self.decoder.set_training(training);
    }

    fn quantize(&self) -> usize {
        self.encoder.quantize() + self.decoder.quantize()
    }
}

/// One model-ready dynamic data point: per-window images and the
/// max-over-windows golden target.
#[derive(Debug, Clone)]
pub struct DynamicSample {
    /// Case id.
    pub id: String,
    /// Split membership (drives over-sampling).
    pub kind: CaseKind,
    /// Per-window images `[W, S, S]`, adjusted + normalized.
    pub images: Tensor,
    /// Adjusted target `[1, S, S]`: pixelwise max over the per-window
    /// golden IR maps, in volts × [`TARGET_SCALE`].
    pub target: Tensor,
    /// How the maps were spatially adjusted.
    pub info: SpatialInfo,
    /// Original-resolution ground truth (volts, max over windows).
    pub truth: Raster,
    /// Wall-clock seconds of all per-window golden solves.
    pub golden_seconds: f64,
}

impl DynamicSample {
    /// Images as a `[1, W, S, S]` constant variable.
    #[must_use]
    pub fn images_var(&self) -> Var {
        let d = self.images.dims();
        Var::constant(
            self.images
                .reshape(&[1, d[0], d[1], d[2]])
                .expect("adding batch axis preserves numel"),
        )
    }

    /// Target as a `[1, 1, S, S]` constant variable.
    #[must_use]
    pub fn target_var(&self) -> Var {
        let d = self.target.dims();
        Var::constant(
            self.target
                .reshape(&[1, d[0], d[1], d[2]])
                .expect("adding batch axis preserves numel"),
        )
    }
}

/// Builds a dynamic sample: generates the vector workload, golden-solves
/// **every window's** PDN, takes the pixelwise max as the target, and
/// rasterizes the windows through the per-window feature pipeline.
///
/// # Errors
///
/// Returns [`SolveIrDropError`] when any window's golden solve fails.
pub fn build_dynamic_sample(
    spec: &CaseSpec,
    windows: usize,
    input_size: usize,
) -> std::result::Result<DynamicSample, SolveIrDropError> {
    let dyn_case = DynamicCase::generate(spec, windows);
    let (w, h) = (dyn_case.case.power.width(), dyn_case.case.power.height());
    let dbu = dyn_case.case.tech.dbu_per_um;

    let t0 = std::time::Instant::now();
    let mut truth: Option<Raster> = None;
    for wi in 0..windows {
        let net = dyn_case.window_netlist(wi);
        let ir = solve_ir_drop(&net, CgConfig::default())?;
        let map = ir_drop_map(&ir, &net, w, h, dbu);
        truth = Some(match truth {
            None => map,
            Some(mut acc) => {
                let d = acc.data_mut();
                for (a, b) in d.iter_mut().zip(map.data()) {
                    *a = a.max(*b);
                }
                acc
            }
        });
    }
    let golden_seconds = t0.elapsed().as_secs_f64();
    let truth = truth.expect("window count validated by DynamicCase");

    let (truth_adj, info) = lmmir_features::spatial::spatial_adjust(&truth, input_size);
    let stack = WindowStack::rasterize(&dyn_case.windows);
    let (adj, _) = stack.adjusted_normalized(input_size);
    let target = truth_adj
        .to_tensor()
        .scale(TARGET_SCALE)
        .reshape(&[1, input_size, input_size])
        .expect("adjusted truth is input_size²");

    Ok(DynamicSample {
        id: spec.id.clone(),
        kind: spec.kind,
        images: adj.to_tensor(),
        target,
        info,
        truth,
        golden_seconds,
    })
}

/// Trains a dynamic predictor with MSE against the max-over-windows golden
/// targets, reusing the static trainer's hyper-parameters (noise
/// augmentation, gradient accumulation, clipping, over-sampling; the
/// reconstruction pre-training stage does not apply — `pretrain_epochs` is
/// ignored).
///
/// # Errors
///
/// Returns tensor errors from malformed samples (sizes must match the
/// model's `input_size` and window count).
pub fn train_dynamic(
    model: &dyn IrPredictor,
    samples: &[DynamicSample],
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(model.parameters(), cfg.lr);
    let clip = (cfg.grad_clip > 0.0).then_some(GradClip {
        max_norm: cfg.grad_clip,
    });
    let mut base_indices = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let times = match s.kind {
            CaseKind::Fake => cfg.oversample.0,
            CaseKind::Real => cfg.oversample.1,
            CaseKind::Hidden => 0,
        };
        base_indices.extend(std::iter::repeat(i).take(times));
    }
    let mut report = TrainReport::default();
    model.set_training(true);
    for _epoch in 0..cfg.epochs {
        let mut indices = base_indices.clone();
        indices.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut steps = 0usize;
        let mut in_batch = 0usize;
        for &ix in &indices {
            let sample = &samples[ix];
            let mut images = sample.images_var();
            if cfg.noise_std > 0.0 {
                let std = rng.gen_range(0.0..cfg.noise_std.max(f32::MIN_POSITIVE));
                let noise = lmmir_tensor::init::normal(&images.dims(), std, &mut rng);
                images = images.add(&Var::constant(noise))?;
            }
            let pred = model.forward(&images, None)?;
            let loss = pred.mse_loss(&sample.target_var())?;
            epoch_loss += loss.value().item();
            steps += 1;
            loss.scale(1.0 / cfg.batch as f32).backward();
            in_batch += 1;
            if in_batch == cfg.batch {
                if let Some(c) = &clip {
                    c.apply(opt.parameters());
                }
                opt.step();
                opt.zero_grad();
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            if let Some(c) = &clip {
                c.apply(opt.parameters());
            }
            opt.step();
            opt.zero_grad();
        }
        report.losses.push(if steps > 0 {
            epoch_loss / steps as f32
        } else {
            0.0
        });
    }
    model.set_training(false);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DynamicIrConfig {
        DynamicIrConfig {
            windows: 3,
            widths: vec![4, 8],
            stem_kernel: 3,
            input_size: 16,
            seed: 5,
        }
    }

    #[test]
    fn forward_shapes_and_identity() {
        let m = DynamicIrPredictor::new(tiny_cfg());
        assert_eq!(m.name(), "DynIR");
        assert_eq!(m.input_channels(), 3);
        assert!(!m.uses_netlist());
        assert!(matches!(
            m.arch_config(),
            Some(crate::arch::ArchConfig::Dynamic(_))
        ));
        let x = Var::constant(Tensor::zeros(&[1, 3, 16, 16]));
        let y = m.forward(&x, None).unwrap();
        assert_eq!(y.dims(), vec![1, 1, 16, 16]);
    }

    #[test]
    fn forward_rejects_wrong_window_count() {
        let m = DynamicIrPredictor::new(tiny_cfg());
        let x = Var::constant(Tensor::zeros(&[1, 2, 16, 16]));
        assert!(m.forward(&x, None).is_err());
    }

    #[test]
    fn prediction_is_max_over_windows() {
        // Feeding W copies of the same window must equal a single-trunk
        // pass on that window (max of identical values), and the max of
        // distinct windows must dominate each single-window prediction.
        let m = DynamicIrPredictor::new(tiny_cfg());
        m.set_training(false);
        let mut rng = StdRng::seed_from_u64(3);
        let one = lmmir_tensor::init::uniform(&[1, 1, 16, 16], 1.0, &mut rng);
        let mut tiled = Vec::new();
        for _ in 0..3 {
            tiled.extend_from_slice(one.data());
        }
        let tiled = Var::constant(Tensor::from_vec(tiled, &[1, 3, 16, 16]).unwrap());
        let single = m.trunk(&Var::constant(one)).unwrap().to_tensor();
        let combined = m.forward(&tiled, None).unwrap().to_tensor();
        assert_eq!(single.data(), combined.data());

        let distinct = Var::constant(lmmir_tensor::init::uniform(&[1, 3, 16, 16], 1.0, &mut rng));
        let per_window: Vec<Tensor> = (0..3)
            .map(|w| {
                let win = distinct.slice_axis(1, w, w + 1).unwrap();
                m.trunk(&win).unwrap().to_tensor()
            })
            .collect();
        let combined = m.forward(&distinct, None).unwrap().to_tensor();
        for i in 0..combined.numel() {
            let expect = per_window
                .iter()
                .map(|t| t.data()[i])
                .fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(combined.data()[i], expect, "pixel {i}");
        }
    }

    #[test]
    fn gradients_flow_to_shared_trunk() {
        let m = DynamicIrPredictor::new(tiny_cfg());
        let mut rng = StdRng::seed_from_u64(7);
        let x = Var::constant(lmmir_tensor::init::uniform(&[1, 3, 16, 16], 1.0, &mut rng));
        m.forward(&x, None).unwrap().sum().backward();
        let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0, "all trunk parameters should receive gradient");
    }

    #[test]
    fn deterministic_construction() {
        let a = DynamicIrPredictor::new(tiny_cfg());
        let b = DynamicIrPredictor::new(tiny_cfg());
        for (x, y) in a.parameters().iter().zip(&b.parameters()) {
            assert_eq!(x.value().data(), y.value().data());
        }
    }

    #[test]
    fn config_validation() {
        assert!(DynamicIrConfig::quick().validate().is_ok());
        let mut bad = DynamicIrConfig::quick();
        bad.windows = 0;
        assert!(bad.validate().is_err());
        bad = DynamicIrConfig::quick();
        bad.windows = MAX_WINDOWS + 1;
        assert!(bad.validate().is_err());
        bad = DynamicIrConfig::quick();
        bad.input_size = 47;
        assert!(bad.validate().is_err());
        bad = DynamicIrConfig::quick();
        bad.widths = vec![8];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn dynamic_sample_builds_and_trains() {
        let spec = CaseSpec::new("d", 16, 16, 2, CaseKind::Fake);
        let sample = build_dynamic_sample(&spec, 3, 16).unwrap();
        assert_eq!(sample.images.dims(), &[3, 16, 16]);
        assert_eq!(sample.target.dims(), &[1, 16, 16]);
        assert!(sample.truth.max() > 0.0);
        assert!(sample.golden_seconds > 0.0);

        let m = DynamicIrPredictor::new(tiny_cfg());
        let cfg = TrainConfig {
            epochs: 6,
            pretrain_epochs: 0,
            oversample: (1, 1),
            ..TrainConfig::quick()
        };
        let report = train_dynamic(&m, &[sample], &cfg).unwrap();
        assert_eq!(report.losses.len(), 6);
        assert!(
            report.final_loss() < report.losses[0],
            "loss should decrease: {:?}",
            report.losses
        );
    }

    #[test]
    fn dynamic_target_dominates_mean_window_target() {
        // The max-over-windows truth must sit at or above any single
        // window's IR — the defining property of the dynamic workload.
        let spec = CaseSpec::new("dom", 16, 16, 4, CaseKind::Fake);
        let dyn_case = DynamicCase::generate(&spec, 3);
        let sample = build_dynamic_sample(&spec, 3, 16).unwrap();
        let net = dyn_case.window_netlist(0);
        let ir = solve_ir_drop(&net, CgConfig::default()).unwrap();
        let map = ir_drop_map(&ir, &net, 16, 16, dyn_case.case.tech.dbu_per_um);
        for (t, m) in sample.truth.data().iter().zip(map.data()) {
            assert!(t + 1e-6 >= *m);
        }
    }
}
