//! Table I: qualitative capability matrix of the compared models.

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCapabilities {
    /// Model name.
    pub name: &'static str,
    /// Processes the raw netlist losslessly ("Fully handle Netlist").
    pub fully_handles_netlist: bool,
    /// Fuses multiple modalities.
    pub multimodal_fusion: bool,
    /// Uses features beyond the basic three maps.
    pub extra_features: bool,
    /// Employs a global attention mechanism.
    pub global_attention: bool,
}

/// The capability matrix of Table I.
#[must_use]
pub fn table1() -> Vec<ModelCapabilities> {
    vec![
        ModelCapabilities {
            name: "1st Place",
            fully_handles_netlist: false,
            multimodal_fusion: false,
            extra_features: true,
            global_attention: true,
        },
        ModelCapabilities {
            name: "2nd Place",
            fully_handles_netlist: false,
            multimodal_fusion: false,
            extra_features: true,
            global_attention: true,
        },
        ModelCapabilities {
            name: "IREDGe",
            fully_handles_netlist: false,
            multimodal_fusion: false,
            extra_features: false,
            global_attention: false,
        },
        ModelCapabilities {
            name: "IRPnet",
            fully_handles_netlist: false,
            multimodal_fusion: false,
            extra_features: false,
            global_attention: false,
        },
        ModelCapabilities {
            name: "LMM-IR (Ours)",
            fully_handles_netlist: true,
            multimodal_fusion: true,
            extra_features: true,
            global_attention: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_ours_is_multimodal() {
        let t = table1();
        assert_eq!(t.len(), 5);
        let ours: Vec<_> = t.iter().filter(|m| m.multimodal_fusion).collect();
        assert_eq!(ours.len(), 1);
        assert_eq!(ours[0].name, "LMM-IR (Ours)");
        assert!(ours[0].fully_handles_netlist);
    }

    #[test]
    fn iredge_and_irpnet_have_no_extras() {
        for m in table1() {
            if m.name == "IREDGe" || m.name == "IRPnet" {
                assert!(!m.extra_features);
                assert!(!m.global_attention);
            }
        }
    }
}
