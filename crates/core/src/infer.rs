//! The reusable inference path: feature preparation → forward → restore.
//!
//! Both the offline evaluation pipeline ([`crate::pipeline::evaluate`]) and
//! the serving layer (`lmmir-serve`) answer the same question — "what is
//! the IR-drop map of this design under this model?" — and they must answer
//! it identically. [`InferenceSession`] is the single implementation of
//! that path, so the two callers cannot drift: evaluation wraps precomputed
//! [`Sample`]s, serving wraps raw request payloads (power map + optional
//! netlist), and both meet at [`InferenceSession::forward`] /
//! [`restore_prediction`].

use crate::arch::FeatureSet;
use crate::data::{Sample, TARGET_SCALE};
use crate::metrics::{hotspot_mask, HOTSPOT_FRAC};
use crate::model::IrPredictor;
use crate::pointcloud::PointCloud;
use lmmir_features::spatial::{normalize_channel, spatial_adjust, spatial_restore};
use lmmir_features::{current_map, FeatureStack, Raster, SpatialInfo, WindowStack};
use lmmir_pdn::PowerMap;
use lmmir_spice::Netlist;
use lmmir_tensor::{Result, Tensor, TensorError, Var};
use std::time::Instant;

/// The input contract of a predictor, as plain copyable data.
///
/// Extracted from the model so feature preparation can run on worker
/// threads (and be cached) without touching the model itself — model
/// internals are `Rc`-based and pinned to the inference thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSpec {
    /// Image channels the model consumes (1, 3 or 6 for static models;
    /// the window count W for dynamic models).
    pub channels: usize,
    /// Square input size the model was configured for.
    pub size: usize,
    /// Whether the model consumes the netlist point cloud.
    pub uses_netlist: bool,
    /// Time windows a dynamic (PowerNet-style) model consumes; `0` marks a
    /// static model. Non-zero implies `channels == windows` and routes
    /// preparation through [`prepare_window_parts`].
    pub windows: usize,
}

impl InputSpec {
    /// Reads the contract off a model.
    #[must_use]
    pub fn of(model: &dyn IrPredictor) -> Self {
        let windows = match model.arch_config() {
            Some(crate::arch::ArchConfig::Dynamic(c)) => c.windows,
            _ => 0,
        };
        InputSpec {
            channels: model.input_channels(),
            size: model.input_size(),
            uses_netlist: model.uses_netlist(),
            windows,
        }
    }
}

/// A design prepared for one model's input contract: adjusted + normalized
/// images, the optional point cloud, and the spatial bookkeeping needed to
/// map predictions back to chip coordinates.
///
/// Plain data (no autograd handles), so it is `Send` — the serving layer
/// prepares inputs on pool workers and caches them across requests.
#[derive(Debug, Clone)]
pub struct PreparedInput {
    /// Model input images `[1, C, S, S]`.
    pub images: Tensor,
    /// Netlist point cloud (populated only when the model consumes it and
    /// the caller supplied a netlist).
    pub cloud: Option<PointCloud>,
    /// How the maps were spatially adjusted (for restoring predictions).
    pub info: SpatialInfo,
}

/// One finished prediction at original chip resolution.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// IR-drop map in volts at the design's original resolution.
    pub map: Raster,
    /// Hotspot threshold in volts ([`HOTSPOT_FRAC`] of the map maximum).
    pub threshold: f32,
    /// Per-pixel hotspot mask (`1` where `map >= threshold`), row-major.
    pub mask: Vec<u8>,
    /// Wall-clock seconds of the model forward pass (the TAT column).
    pub tat: f64,
}

/// Prepares a design given as raw parts (power map + optional netlist) for
/// a model input contract.
///
/// The produced images are bitwise identical to what [`crate::build_sample`]
/// would produce for the same design content — both run the same
/// rasterize → adjust → normalize pipeline.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the model needs netlist-derived feature
/// channels but no netlist was supplied, and [`TensorError::InvalidShape`]
/// for an empty power map or an unsupported channel count.
pub fn prepare_parts(
    spec: InputSpec,
    power: &PowerMap,
    netlist: Option<&Netlist>,
    dbu_per_um: i64,
) -> Result<PreparedInput> {
    if spec.windows > 0 {
        return Err(TensorError::Io(format!(
            "model consumes {} per-window power maps, but the request \
             carried only a static map (see prepare_window_parts)",
            spec.windows
        )));
    }
    let (w, h) = (power.width(), power.height());
    if w == 0 || h == 0 {
        return Err(TensorError::InvalidShape {
            dims: vec![h, w],
            reason: "power map must be non-empty".to_string(),
        });
    }
    let feature_set =
        FeatureSet::for_channels(spec.channels).ok_or_else(|| TensorError::InvalidShape {
            dims: vec![spec.channels],
            reason: "no feature stack with this channel count".to_string(),
        })?;
    let (images, info) = match feature_set {
        // The current map alone (IRPnet's physics-window input) needs no
        // netlist; the adjust + normalize steps match the basic stack's
        // treatment of its current channel exactly.
        FeatureSet::CurrentOnly => {
            let (adj, info) = spatial_adjust(&current_map(power), spec.size);
            let (norm, _) = normalize_channel(&adj);
            let images = norm
                .to_tensor()
                .reshape(&[1, 1, spec.size, spec.size])
                .expect("adjusted raster is size²");
            (images, info)
        }
        set => {
            let netlist = netlist.ok_or_else(|| {
                TensorError::Io(format!(
                    "model consumes {} feature channels, which require a netlist, \
                     but the request carried none",
                    spec.channels
                ))
            })?;
            let stack = match set {
                FeatureSet::Basic => FeatureStack::basic_parts(power, netlist, dbu_per_um),
                FeatureSet::Extended => FeatureStack::extended_parts(power, netlist, dbu_per_um),
                _ => FeatureStack::comprehensive_parts(power, netlist, dbu_per_um),
            };
            let (adj, info) = stack.adjusted_normalized(spec.size);
            let images = adj
                .to_tensor()
                .reshape(&[1, spec.channels, spec.size, spec.size])
                .expect("adjusted stack is C×size²");
            (images, info)
        }
    };
    let cloud = match (spec.uses_netlist, netlist) {
        (true, Some(nl)) => Some(PointCloud::from_netlist(nl, dbu_per_um, w as f64, h as f64)),
        _ => None,
    };
    Ok(PreparedInput {
        images,
        cloud,
        info,
    })
}

/// Prepares a dynamic design given as per-window power maps for a
/// windows-bearing model input contract.
///
/// The produced images are bitwise identical to what
/// [`crate::build_dynamic_sample`] would produce for the same window
/// content — both run the same per-window rasterize → adjust → normalize
/// pipeline ([`WindowStack`]).
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the spec is not dynamic or the window
/// count disagrees, and [`TensorError::InvalidShape`] for empty or
/// mismatched window maps.
pub fn prepare_window_parts(spec: InputSpec, windows: &[PowerMap]) -> Result<PreparedInput> {
    if spec.windows == 0 {
        return Err(TensorError::Io(
            "static model cannot consume per-window power maps".to_string(),
        ));
    }
    if windows.len() != spec.windows {
        return Err(TensorError::Io(format!(
            "model consumes {} windows but the request carried {}",
            spec.windows,
            windows.len()
        )));
    }
    if windows.iter().any(|m| m.width() == 0 || m.height() == 0) {
        return Err(TensorError::InvalidShape {
            dims: vec![0],
            reason: "window maps must be non-empty".to_string(),
        });
    }
    let (w0, h0) = (windows[0].width(), windows[0].height());
    if windows.iter().any(|m| m.width() != w0 || m.height() != h0) {
        return Err(TensorError::InvalidShape {
            dims: vec![w0, h0],
            reason: "window maps must share one size".to_string(),
        });
    }
    let stack = WindowStack::rasterize(windows);
    let (adj, info) = stack.adjusted_normalized(spec.size);
    let images = adj
        .to_tensor()
        .reshape(&[1, spec.windows, spec.size, spec.size])
        .expect("adjusted stack is W×size²");
    Ok(PreparedInput {
        images,
        cloud: None,
        info,
    })
}

/// Restores a model prediction `[1, 1, S, S]` to the original chip
/// resolution and to volts (undoing [`TARGET_SCALE`]).
///
/// # Panics
///
/// Panics when `pred` is not a rank-4 single-map tensor.
#[must_use]
pub fn restore_prediction(info: SpatialInfo, pred: &Tensor) -> Raster {
    let d = pred.dims();
    assert_eq!(d.len(), 4, "prediction must be [1,1,S,S]");
    let flat = pred
        .reshape(&[d[2], d[3]])
        .expect("squeeze batch/channel axes")
        .scale(1.0 / TARGET_SCALE);
    spatial_restore(&Raster::from_tensor(&flat), info)
}

/// A model wrapped for inference: eval mode, shared prepare/forward/restore.
///
/// Holds only a borrow — sessions are cheap to construct per call site.
pub struct InferenceSession<'m> {
    model: &'m dyn IrPredictor,
    spec: InputSpec,
}

impl<'m> InferenceSession<'m> {
    /// Wraps a model, switching it to eval mode.
    #[must_use]
    pub fn new(model: &'m dyn IrPredictor) -> Self {
        model.set_training(false);
        InferenceSession {
            model,
            spec: InputSpec::of(model),
        }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &dyn IrPredictor {
        self.model
    }

    /// The model's input contract.
    #[must_use]
    pub fn spec(&self) -> InputSpec {
        self.spec
    }

    /// Prepares a design given as raw parts (see [`prepare_parts`]).
    ///
    /// # Errors
    ///
    /// See [`prepare_parts`].
    pub fn prepare(
        &self,
        power: &PowerMap,
        netlist: Option<&Netlist>,
        dbu_per_um: i64,
    ) -> Result<PreparedInput> {
        prepare_parts(self.spec, power, netlist, dbu_per_um)
    }

    /// Prepares a dynamic design given as per-window power maps (see
    /// [`prepare_window_parts`]).
    ///
    /// # Errors
    ///
    /// See [`prepare_window_parts`].
    pub fn prepare_windows(&self, windows: &[PowerMap]) -> Result<PreparedInput> {
        prepare_window_parts(self.spec, windows)
    }

    /// Prepares a precomputed [`Sample`] (no rasterization; selects the
    /// stack matching the model's channel count).
    #[must_use]
    pub fn prepare_sample(&self, sample: &Sample) -> PreparedInput {
        PreparedInput {
            images: sample.images_tensor_for(self.spec.channels),
            cloud: self.spec.uses_netlist.then(|| sample.cloud.clone()),
            info: sample.info,
        }
    }

    /// Runs the model forward pass, returning the raw prediction
    /// `[1, 1, S, S]` and the wall-clock seconds it took (TAT).
    ///
    /// Copies the input images into the forward graph — the right call when
    /// the input is shared (the serving layer's feature cache); callers
    /// done with the input should prefer [`InferenceSession::forward_owned`].
    ///
    /// # Errors
    ///
    /// Returns tensor errors when the input does not match the model's
    /// contract.
    pub fn forward(&self, input: &PreparedInput) -> Result<(Tensor, f64)> {
        self.forward_images(input.images.clone(), input.cloud.as_ref())
    }

    /// [`InferenceSession::forward`] consuming the input, so the images
    /// move into the forward graph without a copy (the evaluation pipeline
    /// prepares each sample exactly once and discards it after the pass).
    ///
    /// # Errors
    ///
    /// See [`InferenceSession::forward`].
    pub fn forward_owned(&self, input: PreparedInput) -> Result<(Tensor, f64)> {
        self.forward_images(input.images, input.cloud.as_ref())
    }

    fn forward_images(&self, images: Tensor, cloud: Option<&PointCloud>) -> Result<(Tensor, f64)> {
        let images = Var::constant(images);
        let t0 = Instant::now();
        let pred = self.model.forward(&images, cloud)?;
        // Serving boundary: force any pending fused chain *inside* the
        // timed region, so TAT measures the full compute rather than
        // deferring the tail onto whoever reads the prediction next.
        pred.value().force();
        let tat = t0.elapsed().as_secs_f64();
        Ok((pred.to_tensor(), tat))
    }

    /// Full prediction: forward, restore to chip resolution, hotspot mask
    /// at the paper's threshold.
    ///
    /// # Errors
    ///
    /// See [`InferenceSession::forward`].
    pub fn predict(&self, input: &PreparedInput) -> Result<Prediction> {
        let (pred, tat) = self.forward(input)?;
        let map = restore_prediction(input.info, &pred);
        let (threshold, mask) = hotspot_mask(&map, HOTSPOT_FRAC);
        Ok(Prediction {
            map,
            threshold,
            mask,
            tat,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{iredge, irpnet};
    use crate::data::build_sample;
    use crate::model::{LmmIr, LmmIrConfig};
    use lmmir_pdn::{CaseKind, CaseSpec};

    #[test]
    fn raw_parts_match_sample_preparation_bitwise() {
        // The same design content, prepared once through `build_sample` and
        // once through the raw-parts path, must produce identical inputs —
        // the no-drift guarantee the serving layer relies on.
        let spec = CaseSpec::new("p", 20, 20, 3, CaseKind::Hidden);
        let case = spec.generate();
        let sample = build_sample(&spec, 32).unwrap();
        for model in [iredge(32, 1), iredge(32, 2)] {
            let session = InferenceSession::new(&model);
            let from_sample = session.prepare_sample(&sample);
            let from_parts = session
                .prepare(&case.power, Some(&case.netlist), case.tech.dbu_per_um)
                .unwrap();
            assert_eq!(from_sample.images.data(), from_parts.images.data());
            assert_eq!(from_sample.info, from_parts.info);
        }
    }

    #[test]
    fn predict_matches_pipeline_restore() {
        let spec = CaseSpec::new("q", 16, 16, 5, CaseKind::Hidden);
        let sample = build_sample(&spec, 16).unwrap();
        let model = iredge(16, 9);
        let session = InferenceSession::new(&model);
        let input = session.prepare_sample(&sample);
        let pred = session.predict(&input).unwrap();
        assert_eq!(pred.map.width(), 16);
        assert_eq!(pred.mask.len(), 16 * 16);
        assert!(pred.tat > 0.0);
        // Mask agrees with the threshold everywhere.
        for (v, m) in pred.map.data().iter().zip(&pred.mask) {
            assert_eq!(*m == 1, *v >= pred.threshold && pred.map.max() > 0.0);
        }
        // Restoring through the Sample path gives the identical raster.
        let (raw, _) = session.forward(&input).unwrap();
        assert_eq!(sample.restore_prediction(&raw).data(), pred.map.data());
    }

    #[test]
    fn single_channel_model_needs_no_netlist() {
        let spec = CaseSpec::new("r", 16, 16, 7, CaseKind::Hidden);
        let case = spec.generate();
        let model = irpnet(16, 3);
        let session = InferenceSession::new(&model);
        let input = session
            .prepare(&case.power, None, case.tech.dbu_per_um)
            .unwrap();
        assert!(session.predict(&input).is_ok());
    }

    #[test]
    fn multi_channel_model_rejects_missing_netlist() {
        let case = CaseSpec::new("s", 16, 16, 7, CaseKind::Hidden).generate();
        let model = iredge(16, 3);
        let session = InferenceSession::new(&model);
        let err = session
            .prepare(&case.power, None, case.tech.dbu_per_um)
            .unwrap_err();
        assert!(err.to_string().contains("netlist"), "got {err}");
    }

    #[test]
    fn netlist_model_builds_cloud_from_parts() {
        let case = CaseSpec::new("t", 16, 16, 4, CaseKind::Hidden).generate();
        let cfg = LmmIrConfig {
            widths: vec![4, 8],
            input_size: 16,
            ..LmmIrConfig::quick()
        };
        let model = LmmIr::new(cfg);
        let session = InferenceSession::new(&model);
        let input = session
            .prepare(&case.power, Some(&case.netlist), case.tech.dbu_per_um)
            .unwrap();
        assert!(input.cloud.is_some());
        assert!(session.predict(&input).is_ok());
    }

    #[test]
    fn window_parts_match_dynamic_sample_bitwise() {
        use crate::dynamic::{build_dynamic_sample, DynamicIrConfig, DynamicIrPredictor};
        let spec = CaseSpec::new("dw", 16, 16, 6, CaseKind::Hidden);
        let sample = build_dynamic_sample(&spec, 3, 16).unwrap();
        let model = DynamicIrPredictor::new(DynamicIrConfig {
            windows: 3,
            widths: vec![4, 8],
            stem_kernel: 3,
            input_size: 16,
            seed: 2,
        });
        let session = InferenceSession::new(&model);
        assert_eq!(session.spec().windows, 3);
        let dyn_case = lmmir_pdn::DynamicCase::generate(&spec, 3);
        let prepared = session.prepare_windows(&dyn_case.windows).unwrap();
        let sample_images = sample.images.reshape(&[1, 3, 16, 16]).unwrap();
        assert_eq!(prepared.images.data(), sample_images.data());
        assert_eq!(prepared.info, sample.info);
        assert!(session.predict(&prepared).is_ok());
    }

    #[test]
    fn dynamic_spec_rejects_static_preparation_and_vice_versa() {
        use crate::dynamic::{DynamicIrConfig, DynamicIrPredictor};
        let case = CaseSpec::new("dx", 16, 16, 1, CaseKind::Fake).generate();
        let model = DynamicIrPredictor::new(DynamicIrConfig {
            windows: 2,
            widths: vec![4, 8],
            stem_kernel: 3,
            input_size: 16,
            seed: 1,
        });
        let session = InferenceSession::new(&model);
        let err = session
            .prepare(&case.power, Some(&case.netlist), case.tech.dbu_per_um)
            .unwrap_err();
        assert!(err.to_string().contains("per-window"), "got {err}");
        // Wrong window count is rejected.
        let err = session
            .prepare_windows(std::slice::from_ref(&case.power))
            .unwrap_err();
        assert!(err.to_string().contains("2 windows"), "got {err}");
        // Static models reject window payloads.
        let static_model = irpnet(16, 3);
        let static_session = InferenceSession::new(&static_model);
        assert!(static_session
            .prepare_windows(&[case.power.clone(), case.power.clone()])
            .is_err());
    }

    #[test]
    fn comprehensive_model_prepares_eight_channels_bitwise() {
        use crate::zoo::{WacaUnet, WacaUnetConfig};
        let spec = CaseSpec::new("u", 16, 16, 4, CaseKind::Hidden);
        let case = spec.generate();
        let sample = build_sample(&spec, 16).unwrap();
        let model = WacaUnet::new(WacaUnetConfig {
            widths: vec![4, 8],
            input_size: 16,
            ..WacaUnetConfig::quick()
        });
        let session = InferenceSession::new(&model);
        let from_sample = session.prepare_sample(&sample);
        assert_eq!(from_sample.images.dims(), &[1, 8, 16, 16]);
        let from_parts = session
            .prepare(&case.power, Some(&case.netlist), case.tech.dbu_per_um)
            .unwrap();
        assert_eq!(from_sample.images.data(), from_parts.images.data());
        assert!(session.predict(&from_parts).is_ok());
        // And like every netlist-fed stack, a missing netlist is rejected.
        let err = session
            .prepare(&case.power, None, case.tech.dbu_per_um)
            .unwrap_err();
        assert!(err.to_string().contains("netlist"), "got {err}");
    }

    #[test]
    fn empty_power_map_is_rejected() {
        let model = irpnet(16, 3);
        let session = InferenceSession::new(&model);
        assert!(session.prepare(&PowerMap::zeros(0, 0), None, 2000).is_err());
    }
}
