//! The five ablation configurations of Fig. 4.

use crate::model::LmmIrConfig;
use crate::train::TrainConfig;

/// One bar group of the paper's Fig. 4 ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblationVariant {
    /// "EC": plain encoder-decoder flow — no attention gates, no LNT.
    EncoderDecoder,
    /// "W-Att": full model *without* the attention blocks (gates).
    WithoutAttention,
    /// "W-LNT": full model *without* the large netlist transformer.
    WithoutLnt,
    /// "W-Aug": full model *without* Gaussian-noise augmentation.
    WithoutAugmentation,
    /// "United": all techniques together (the proposed model).
    United,
}

impl AblationVariant {
    /// All five variants in the paper's plotting order.
    #[must_use]
    pub fn all() -> [AblationVariant; 5] {
        [
            AblationVariant::EncoderDecoder,
            AblationVariant::WithoutAttention,
            AblationVariant::WithoutLnt,
            AblationVariant::WithoutAugmentation,
            AblationVariant::United,
        ]
    }

    /// Axis label as printed in Fig. 4.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AblationVariant::EncoderDecoder => "EC",
            AblationVariant::WithoutAttention => "W-Att",
            AblationVariant::WithoutLnt => "W-LNT",
            AblationVariant::WithoutAugmentation => "W-Aug",
            AblationVariant::United => "United",
        }
    }

    /// Paper-reported F1 for this variant (Fig. 4), for comparison columns.
    #[must_use]
    pub fn paper_f1(&self) -> f64 {
        match self {
            AblationVariant::EncoderDecoder => 0.27,
            AblationVariant::WithoutAttention => 0.30,
            AblationVariant::WithoutLnt => 0.48,
            AblationVariant::WithoutAugmentation => 0.13,
            AblationVariant::United => 0.58,
        }
    }

    /// Paper-reported MAE (×1e-4 V) for this variant (Fig. 4).
    #[must_use]
    pub fn paper_mae_e4(&self) -> f64 {
        match self {
            AblationVariant::EncoderDecoder => 1.93,
            AblationVariant::WithoutAttention => 2.65,
            AblationVariant::WithoutLnt => 1.96,
            AblationVariant::WithoutAugmentation => 2.03,
            AblationVariant::United => 1.35,
        }
    }

    /// Derives the model configuration for this variant from a base config.
    #[must_use]
    pub fn model_config(&self, base: &LmmIrConfig) -> LmmIrConfig {
        let mut cfg = base.clone();
        match self {
            AblationVariant::EncoderDecoder => {
                cfg.use_lnt = false;
                cfg.use_attention_gates = false;
            }
            AblationVariant::WithoutAttention => cfg.use_attention_gates = false,
            AblationVariant::WithoutLnt => cfg.use_lnt = false,
            AblationVariant::WithoutAugmentation | AblationVariant::United => {}
        }
        cfg
    }

    /// [`AblationVariant::model_config`] lifted to [`crate::arch::ArchConfig`]:
    /// applies this variant's flag flips when the base describes an LMM-IR
    /// trunk, and returns `None` for every other architecture (the ablation
    /// axes — attention gates, LNT — only exist there).
    #[must_use]
    pub fn arch_config(&self, base: &crate::arch::ArchConfig) -> Option<crate::arch::ArchConfig> {
        match base {
            crate::arch::ArchConfig::LmmIr(cfg) => {
                Some(crate::arch::ArchConfig::LmmIr(self.model_config(cfg)))
            }
            _ => None,
        }
    }

    /// Derives the training configuration for this variant.
    #[must_use]
    pub fn train_config(&self, base: &TrainConfig) -> TrainConfig {
        let mut cfg = base.clone();
        if *self == AblationVariant::WithoutAugmentation {
            cfg.noise_std = 0.0;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_variants_with_unique_labels() {
        let all = AblationVariant::all();
        assert_eq!(all.len(), 5);
        let mut labels: Vec<&str> = all.iter().map(AblationVariant::label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn united_keeps_everything() {
        let base = LmmIrConfig::quick();
        let cfg = AblationVariant::United.model_config(&base);
        assert!(cfg.use_lnt);
        assert!(cfg.use_attention_gates);
        let t = AblationVariant::United.train_config(&TrainConfig::quick());
        assert!(t.noise_std > 0.0);
    }

    #[test]
    fn ec_removes_both_modules() {
        let cfg = AblationVariant::EncoderDecoder.model_config(&LmmIrConfig::quick());
        assert!(!cfg.use_lnt);
        assert!(!cfg.use_attention_gates);
    }

    #[test]
    fn w_aug_only_touches_training() {
        let base = LmmIrConfig::quick();
        let cfg = AblationVariant::WithoutAugmentation.model_config(&base);
        assert_eq!(cfg, base);
        let t = AblationVariant::WithoutAugmentation.train_config(&TrainConfig::quick());
        assert_eq!(t.noise_std, 0.0);
    }

    #[test]
    fn arch_config_only_ablates_lmmir() {
        use crate::arch::ArchConfig;
        let base = ArchConfig::LmmIr(LmmIrConfig::quick());
        let ec = AblationVariant::EncoderDecoder.arch_config(&base).unwrap();
        match ec {
            ArchConfig::LmmIr(cfg) => {
                assert!(!cfg.use_lnt);
                assert!(!cfg.use_attention_gates);
            }
            other => panic!("ablating an LMM-IR config changed its family: {other:?}"),
        }
        let waca = ArchConfig::Waca(crate::zoo::WacaUnetConfig::quick());
        assert_eq!(AblationVariant::WithoutLnt.arch_config(&waca), None);
    }

    #[test]
    fn paper_numbers_match_figure4() {
        assert!((AblationVariant::United.paper_f1() - 0.58).abs() < 1e-12);
        assert!((AblationVariant::WithoutAugmentation.paper_mae_e4() - 2.03).abs() < 1e-12);
    }
}
