//! End-to-end evaluation pipeline: predict on hidden cases and score
//! against original-resolution golden ground truth.

use crate::data::Sample;
use crate::metrics::{f1_score, mae, CaseMetrics};
use crate::model::IrPredictor;
use lmmir_tensor::Result;
use std::time::Instant;

/// Evaluates a trained model on a set of samples, producing one
/// [`CaseMetrics`] row per case (the per-case rows of Table III).
///
/// TAT is measured as wall-clock inference time of the model forward pass
/// (feature preparation is shared by all models and already amortized in
/// the samples).
///
/// # Errors
///
/// Returns tensor errors when a sample does not match the model's input
/// contract.
pub fn evaluate(model: &dyn IrPredictor, samples: &[Sample]) -> Result<Vec<CaseMetrics>> {
    model.set_training(false);
    let mut rows = Vec::with_capacity(samples.len());
    for sample in samples {
        let images = sample.images_for(model.input_channels());
        let cloud = model.uses_netlist().then_some(&sample.cloud);
        let t0 = Instant::now();
        let pred = model.forward(&images, cloud)?;
        let tat = t0.elapsed().as_secs_f64();
        let restored = sample.restore_prediction(&pred.to_tensor());
        rows.push(CaseMetrics {
            id: sample.id.clone(),
            f1: f1_score(&restored, &sample.truth),
            mae_e4: mae(&restored, &sample.truth) * 1e4,
            tat,
        });
    }
    Ok(rows)
}

/// Speed-up of model inference versus the golden solver on each case —
/// the paper's core motivation (hours of simulation vs seconds of
/// inference).
#[must_use]
pub fn golden_speedups(rows: &[CaseMetrics], samples: &[Sample]) -> Vec<(String, f64)> {
    rows.iter()
        .zip(samples)
        .map(|(r, s)| {
            let speedup = if r.tat > 0.0 {
                s.golden_seconds / r.tat
            } else {
                f64::INFINITY
            };
            (r.id.clone(), speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::iredge;
    use crate::data::build_sample;
    use crate::train::{train, TrainConfig};
    use lmmir_pdn::{CaseKind, CaseSpec};

    #[test]
    fn evaluate_produces_row_per_sample() {
        let samples = vec![
            build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Hidden), 16).unwrap(),
            build_sample(&CaseSpec::new("b", 20, 20, 2, CaseKind::Hidden), 16).unwrap(),
        ];
        let model = iredge(16, 3);
        let rows = evaluate(&model, &samples).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.f1 >= 0.0 && r.f1 <= 1.0);
            assert!(r.mae_e4 >= 0.0);
            assert!(r.tat > 0.0);
        }
    }

    #[test]
    fn trained_model_beats_untrained_on_mae() {
        let train_samples = vec![
            build_sample(&CaseSpec::new("t0", 16, 16, 10, CaseKind::Fake), 16).unwrap(),
            build_sample(&CaseSpec::new("t1", 16, 16, 11, CaseKind::Fake), 16).unwrap(),
            build_sample(&CaseSpec::new("t2", 16, 16, 12, CaseKind::Fake), 16).unwrap(),
        ];
        let eval_samples =
            vec![build_sample(&CaseSpec::new("e", 16, 16, 13, CaseKind::Hidden), 16).unwrap()];
        let untrained = iredge(16, 42);
        let before = evaluate(&untrained, &eval_samples).unwrap()[0].mae_e4;
        let trained = iredge(16, 42);
        let cfg = TrainConfig {
            epochs: 15,
            pretrain_epochs: 0,
            oversample: (1, 1),
            ..TrainConfig::quick()
        };
        train(&trained, &train_samples, &cfg).unwrap();
        let after = evaluate(&trained, &eval_samples).unwrap()[0].mae_e4;
        assert!(
            after < before,
            "training should reduce MAE: before {before:.2} after {after:.2}"
        );
    }

    #[test]
    fn golden_speedups_positive() {
        let samples =
            vec![build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Hidden), 16).unwrap()];
        let model = iredge(16, 3);
        let rows = evaluate(&model, &samples).unwrap();
        let sp = golden_speedups(&rows, &samples);
        assert_eq!(sp.len(), 1);
        assert!(sp[0].1 > 0.0);
    }
}
