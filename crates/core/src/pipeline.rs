//! End-to-end evaluation pipeline: predict on hidden cases and score
//! against original-resolution golden ground truth.

use crate::data::Sample;
use crate::infer::{restore_prediction, InferenceSession};
use crate::metrics::{f1_score, mae, CaseMetrics};
use crate::model::IrPredictor;
use lmmir_features::SpatialInfo;
use lmmir_tensor::{Result, Tensor};
use std::collections::HashMap;

/// Evaluates a trained model on a set of samples, producing one
/// [`CaseMetrics`] row per case (the per-case rows of Table III).
///
/// TAT is measured as wall-clock inference time of the model forward pass
/// (feature preparation is shared by all models and already amortized in
/// the samples).
///
/// Evaluation proceeds in waves of [`EVAL_WAVE`] cases: within a wave,
/// forward passes run one case at a time on the calling thread — the
/// autograd tape is deliberately `Rc`-based, so cross-case parallelism
/// comes from the parallel kernels *inside* each forward — and then the
/// per-case scoring (prediction restore, F1, MAE) fans out across the
/// `lmmir-par` pool. Each case keeps the TAT measured around its own
/// forward call, and at most one wave of predictions is buffered at a
/// time, so peak memory stays bounded for arbitrarily long sweeps.
///
/// # Errors
///
/// Returns tensor errors when a sample does not match the model's input
/// contract.
pub fn evaluate(model: &dyn IrPredictor, samples: &[Sample]) -> Result<Vec<CaseMetrics>> {
    let session = InferenceSession::new(model);
    let mut rows = Vec::with_capacity(samples.len());
    for wave in samples.chunks(EVAL_WAVE) {
        let mut preds: Vec<(SpatialInfo, Tensor, f64)> = Vec::with_capacity(wave.len());
        for sample in wave {
            // The prepared input is consumed by its forward pass so only
            // one input buffer is alive at a time; the wave keeps just the
            // (small) predictions and restore bookkeeping.
            let prepared = session.prepare_sample(sample);
            let info = prepared.info;
            let (pred, tat) = session.forward_owned(prepared)?;
            preds.push((info, pred, tat));
        }
        rows.extend(lmmir_par::par_map(wave.len(), |i| {
            let (info, pred, tat) = &preds[i];
            let sample = &wave[i];
            let restored = restore_prediction(*info, pred);
            CaseMetrics {
                id: sample.id.clone(),
                f1: f1_score(&restored, &sample.truth),
                mae_e4: mae(&restored, &sample.truth) * 1e4,
                tat: *tat,
            }
        }));
    }
    Ok(rows)
}

/// Cases per evaluation wave: enough to keep every worker busy during the
/// scoring fan-out, small enough that the buffered predictions stay cheap
/// (a wave of 512×512 maps is ~32 MiB).
const EVAL_WAVE: usize = 32;

/// Speed-up of model inference versus the golden solver on each case —
/// the paper's core motivation (hours of simulation vs seconds of
/// inference).
///
/// Rows are joined to samples **by case id**, so reordered or filtered
/// metric rows can never pair with the wrong golden time; rows whose id has
/// no matching sample are omitted.
#[must_use]
pub fn golden_speedups(rows: &[CaseMetrics], samples: &[Sample]) -> Vec<(String, f64)> {
    let golden: HashMap<&str, f64> = samples
        .iter()
        .map(|s| (s.id.as_str(), s.golden_seconds))
        .collect();
    rows.iter()
        .filter_map(|r| {
            let golden_seconds = golden.get(r.id.as_str())?;
            let speedup = if r.tat > 0.0 {
                golden_seconds / r.tat
            } else {
                f64::INFINITY
            };
            Some((r.id.clone(), speedup))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::iredge;
    use crate::data::build_sample;
    use crate::train::{train, TrainConfig};
    use lmmir_pdn::{CaseKind, CaseSpec};

    #[test]
    fn evaluate_produces_row_per_sample() {
        let samples = vec![
            build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Hidden), 16).unwrap(),
            build_sample(&CaseSpec::new("b", 20, 20, 2, CaseKind::Hidden), 16).unwrap(),
        ];
        let model = iredge(16, 3);
        let rows = evaluate(&model, &samples).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.f1 >= 0.0 && r.f1 <= 1.0);
            assert!(r.mae_e4 >= 0.0);
            assert!(r.tat > 0.0);
        }
    }

    #[test]
    fn trained_model_beats_untrained_on_mae() {
        let train_samples = vec![
            build_sample(&CaseSpec::new("t0", 16, 16, 10, CaseKind::Fake), 16).unwrap(),
            build_sample(&CaseSpec::new("t1", 16, 16, 11, CaseKind::Fake), 16).unwrap(),
            build_sample(&CaseSpec::new("t2", 16, 16, 12, CaseKind::Fake), 16).unwrap(),
        ];
        let eval_samples =
            vec![build_sample(&CaseSpec::new("e", 16, 16, 13, CaseKind::Hidden), 16).unwrap()];
        let untrained = iredge(16, 42);
        let before = evaluate(&untrained, &eval_samples).unwrap()[0].mae_e4;
        let trained = iredge(16, 42);
        let cfg = TrainConfig {
            epochs: 15,
            pretrain_epochs: 0,
            oversample: (1, 1),
            ..TrainConfig::quick()
        };
        train(&trained, &train_samples, &cfg).unwrap();
        let after = evaluate(&trained, &eval_samples).unwrap()[0].mae_e4;
        assert!(
            after < before,
            "training should reduce MAE: before {before:.2} after {after:.2}"
        );
    }

    #[test]
    fn golden_speedups_positive() {
        let samples =
            vec![build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Hidden), 16).unwrap()];
        let model = iredge(16, 3);
        let rows = evaluate(&model, &samples).unwrap();
        let sp = golden_speedups(&rows, &samples);
        assert_eq!(sp.len(), 1);
        assert!(sp[0].1 > 0.0);
    }

    #[test]
    fn golden_speedups_join_by_id_survives_reorder_and_filter() {
        let samples = vec![
            build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Hidden), 16).unwrap(),
            build_sample(&CaseSpec::new("b", 20, 20, 2, CaseKind::Hidden), 16).unwrap(),
        ];
        let model = iredge(16, 3);
        let rows = evaluate(&model, &samples).unwrap();

        // Reordered samples must still pair each row with its own golden
        // time (positional zipping would silently swap them).
        let reordered: Vec<Sample> = vec![samples[1].clone(), samples[0].clone()];
        let sp = golden_speedups(&rows, &reordered);
        assert_eq!(sp.len(), 2);
        for (row, (id, speedup)) in rows.iter().zip(&sp) {
            assert_eq!(&row.id, id);
            let golden = samples
                .iter()
                .find(|s| s.id == row.id)
                .map(|s| s.golden_seconds)
                .unwrap();
            assert!((speedup - golden / row.tat).abs() < 1e-12);
        }

        // Filtered rows: a row whose sample is missing is omitted, and the
        // remaining row still matches by id.
        let only_b: Vec<Sample> = vec![samples[1].clone()];
        let sp = golden_speedups(&rows, &only_b);
        assert_eq!(sp.len(), 1);
        assert_eq!(sp[0].0, "b");
    }

    #[test]
    fn evaluate_scores_identically_across_thread_counts() {
        let samples = vec![
            build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Hidden), 16).unwrap(),
            build_sample(&CaseSpec::new("b", 20, 20, 2, CaseKind::Hidden), 16).unwrap(),
            build_sample(&CaseSpec::new("c", 16, 16, 3, CaseKind::Hidden), 16).unwrap(),
        ];
        let model = iredge(16, 3);
        let reference = lmmir_par::with_threads(1, || evaluate(&model, &samples).unwrap());
        for threads in [2, 7] {
            let rows = lmmir_par::with_threads(threads, || evaluate(&model, &samples).unwrap());
            assert_eq!(rows.len(), reference.len());
            for (a, b) in reference.iter().zip(&rows) {
                assert_eq!(a.id, b.id, "row order must be stable");
                assert_eq!(a.f1.to_bits(), b.f1.to_bits(), "F1 drifted at {threads}");
                assert_eq!(
                    a.mae_e4.to_bits(),
                    b.mae_e4.to_bits(),
                    "MAE drifted at {threads}"
                );
            }
        }
    }
}
