//! Two-stage training (paper §III-D): reconstruction pre-training followed
//! by IR-drop fine-tuning, with Gaussian-noise augmentation and the
//! contest over-sampling recipe.

use crate::data::{oversample_indices, Sample};
use crate::model::IrPredictor;
use lmmir_tensor::{Adam, GradClip, Optimizer, Result, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Reconstruction pre-training epochs (stage 1).
    pub pretrain_epochs: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Gradient-accumulation batch size (paper: 16).
    pub batch: usize,
    /// Upper bound of the Gaussian-noise augmentation σ, drawn uniformly
    /// from `(0, noise_std)` per step (paper: 1e-3). Zero disables
    /// augmentation (ablation "W-Aug").
    pub noise_std: f32,
    /// Global-norm gradient clip (0 disables).
    pub grad_clip: f32,
    /// Over-sampling factors `(fake, real)`; the paper uses (10, 20).
    pub oversample: (usize, usize),
    /// Shuffling / augmentation seed.
    pub seed: u64,
}

impl TrainConfig {
    /// Laptop-scale preset for the reproduction harness.
    ///
    /// Note on `noise_std`: the paper draws σ from `(0, 1e-3)` on raw map
    /// units; our channels are z-score normalized, so the equivalent
    /// magnitude is larger (0.05 ≈ 5 % of a channel's standard deviation).
    #[must_use]
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 18,
            pretrain_epochs: 2,
            lr: 1e-3,
            batch: 4,
            noise_std: 0.05,
            grad_clip: 5.0,
            oversample: (2, 4),
            seed: 0x7EA1,
        }
    }

    /// Paper-scale preset (200 epochs, batch 16, over-sample 10/20).
    #[must_use]
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 200,
            pretrain_epochs: 20,
            lr: 1e-3,
            batch: 16,
            noise_std: 1e-3,
            grad_clip: 5.0,
            oversample: (10, 20),
            seed: 0x7EA1,
        }
    }
}

/// Per-epoch loss traces from a training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean reconstruction loss per pre-training epoch.
    pub pretrain_losses: Vec<f32>,
    /// Mean MSE per fine-tuning epoch.
    pub losses: Vec<f32>,
}

impl TrainReport {
    /// Final fine-tuning loss (∞ when training never ran).
    #[must_use]
    pub fn final_loss(&self) -> f32 {
        self.losses.last().copied().unwrap_or(f32::INFINITY)
    }
}

fn add_noise(images: &Var, max_std: f32, rng: &mut StdRng) -> Result<Var> {
    if max_std <= 0.0 {
        return Ok(images.clone());
    }
    let std = rng.gen_range(0.0..max_std.max(f32::MIN_POSITIVE));
    let dims = images.dims();
    let noise = lmmir_tensor::init::normal(&dims, std, rng);
    images.add(&Var::constant(noise))
}

/// Extracts the reconstruction target for stage 1: the current map (first
/// basic channel) of the sample at training resolution — a self-supervised
/// target every model's input contains in some form.
fn reconstruction_target(sample: &Sample) -> Result<Var> {
    let images = &sample.images_basic;
    let d = images.dims().to_vec();
    let first = images
        .reshape(&[d[0], d[1] * d[2]])?
        .slice_axis(0, 0, 1)?
        .reshape(&[1, 1, d[1], d[2]])?;
    Ok(Var::constant(first))
}

/// Trains a predictor on the given samples (hidden-kind samples are
/// automatically excluded by the over-sampling recipe).
///
/// Stage 1 trains the network to reconstruct the current map (a
/// self-supervised task sharpening the joint representation); stage 2
/// fine-tunes on the golden IR-drop targets with MSE loss.
///
/// # Errors
///
/// Returns tensor errors from malformed samples (sizes must match the
/// model's `input_size`).
pub fn train(
    model: &dyn IrPredictor,
    samples: &[Sample],
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(model.parameters(), cfg.lr);
    let clip = (cfg.grad_clip > 0.0).then_some(GradClip {
        max_norm: cfg.grad_clip,
    });
    let base_indices = oversample_indices(samples, cfg.oversample.0, cfg.oversample.1);
    let mut report = TrainReport::default();
    model.set_training(true);

    for stage in 0..2 {
        let epochs = if stage == 0 {
            cfg.pretrain_epochs
        } else {
            cfg.epochs
        };
        for _epoch in 0..epochs {
            let mut indices = base_indices.clone();
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut steps = 0usize;
            let mut in_batch = 0usize;
            for &ix in &indices {
                let sample = &samples[ix];
                let images = sample.images_for(model.input_channels());
                let images = add_noise(&images, cfg.noise_std, &mut rng)?;
                let cloud = model.uses_netlist().then_some(&sample.cloud);
                let pred = model.forward(&images, cloud)?;
                let target = if stage == 0 {
                    reconstruction_target(sample)?
                } else {
                    sample.target_var()
                };
                let loss = pred.mse_loss(&target)?;
                epoch_loss += loss.value().item();
                steps += 1;
                // Scale so accumulated gradients average over the batch.
                loss.scale(1.0 / cfg.batch as f32).backward();
                in_batch += 1;
                if in_batch == cfg.batch {
                    if let Some(c) = &clip {
                        c.apply(opt.parameters());
                    }
                    opt.step();
                    opt.zero_grad();
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                if let Some(c) = &clip {
                    c.apply(opt.parameters());
                }
                opt.step();
                opt.zero_grad();
            }
            let mean = if steps > 0 {
                epoch_loss / steps as f32
            } else {
                0.0
            };
            if stage == 0 {
                report.pretrain_losses.push(mean);
            } else {
                report.losses.push(mean);
            }
        }
    }
    model.set_training(false);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::iredge;
    use crate::data::build_sample;
    use lmmir_pdn::{CaseKind, CaseSpec};

    fn tiny_samples() -> Vec<Sample> {
        vec![
            build_sample(&CaseSpec::new("a", 16, 16, 1, CaseKind::Fake), 16).unwrap(),
            build_sample(&CaseSpec::new("b", 16, 16, 2, CaseKind::Real), 16).unwrap(),
        ]
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            pretrain_epochs: 1,
            lr: 2e-3,
            batch: 2,
            noise_std: 1e-3,
            grad_clip: 5.0,
            oversample: (1, 1),
            seed: 3,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let samples = tiny_samples();
        let model = iredge(16, 7);
        let cfg = TrainConfig {
            epochs: 10,
            ..tiny_cfg()
        };
        let report = train(&model, &samples, &cfg).unwrap();
        assert_eq!(report.losses.len(), 10);
        assert_eq!(report.pretrain_losses.len(), 1);
        let first = report.losses[0];
        let last = report.final_loss();
        assert!(
            last < first,
            "loss should decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn hidden_samples_are_excluded() {
        let mut samples = tiny_samples();
        samples.push(build_sample(&CaseSpec::new("h", 16, 16, 3, CaseKind::Hidden), 16).unwrap());
        let ix = oversample_indices(&samples, 1, 1);
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let samples = tiny_samples();
        let cfg = TrainConfig {
            noise_std: 0.0,
            epochs: 2,
            pretrain_epochs: 0,
            ..tiny_cfg()
        };
        let m1 = iredge(16, 5);
        let m2 = iredge(16, 5);
        let r1 = train(&m1, &samples, &cfg).unwrap();
        let r2 = train(&m2, &samples, &cfg).unwrap();
        assert_eq!(r1.losses, r2.losses);
    }

    #[test]
    fn model_left_in_eval_mode() {
        let samples = tiny_samples();
        let model = iredge(16, 9);
        train(&model, &samples, &tiny_cfg()).unwrap();
        // Eval forward must be deterministic (BN running stats in use).
        let x = samples[0].images_for(3);
        let a = model.forward(&x, None).unwrap().to_tensor();
        let b = model.forward(&x, None).unwrap().to_tensor();
        assert_eq!(a.data(), b.data());
    }
}
