//! # lmm-ir
//!
//! Reproduction of **LMM-IR** (Ma et al., DAC 2025): a large-scale
//! netlist-aware multimodal framework for static IR-drop prediction.
//!
//! The model consumes two modalities of one PDN design:
//!
//! * **circuit maps** — six per-µm² rasters (current, effective distance,
//!   PDN density, voltage-source, current-source, resistance) encoded by a
//!   downsampling CNN with attention gates;
//! * **the SPICE netlist itself** — encoded losslessly as a 3-D point cloud
//!   (coordinates, value, element type, metal layers per element) and
//!   processed by the Large-scale Netlist Transformer ([`Lnt`]).
//!
//! A cross-attention [`FusionModule`] aligns the modalities at the
//! bottleneck, and a deconvolution decoder emits the IR-drop map. Training
//! is two-stage (reconstruction pre-training → MSE fine-tuning) with
//! Gaussian-noise augmentation, following §III-D of the paper.
//!
//! Baselines from Table III (`IREDGe`, `IRPnet`, contest 1st/2nd place) are
//! provided behind the same [`IrPredictor`] interface, and
//! [`AblationVariant`] enumerates the Fig. 4 configurations.
//!
//! ```no_run
//! use lmm_ir::{build_sample, evaluate, train, IrPredictor, LmmIr, LmmIrConfig, TrainConfig};
//! use lmmir_pdn::{hidden_suite, training_suite};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = LmmIrConfig::quick();
//! let model = LmmIr::new(cfg.clone());
//! let train_set: Vec<_> = training_suite(6, 2, 0.125, 7)
//!     .iter()
//!     .map(|s| build_sample(s, cfg.input_size))
//!     .collect::<Result<_, _>>()?;
//! train(&model, &train_set, &TrainConfig::quick())?;
//! let hidden: Vec<_> = hidden_suite(0.125, 7)
//!     .iter()
//!     .map(|s| build_sample(s, cfg.input_size))
//!     .collect::<Result<_, _>>()?;
//! for row in evaluate(&model, &hidden)? {
//!     println!("{}: F1 {:.2} MAE {:.2}e-4 TAT {:.2}s", row.id, row.f1, row.mae_e4, row.tat);
//! }
//! # Ok(())
//! # }
//! ```

pub mod ablation;
pub mod arch;
pub mod baselines;
pub mod blocks;
pub mod capabilities;
pub mod checkpoint;
pub mod data;
pub mod dynamic;
pub mod fixer;
pub mod infer;
pub mod lnt;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod pointcloud;
pub mod train;
pub mod zoo;

pub use ablation::AblationVariant;
pub use arch::{build_predictor, ArchConfig, ArchSpec, FeatureSet};
pub use baselines::{first_place, iredge, irpnet, second_place, IrpNet, UNetModel};
pub use capabilities::{table1, ModelCapabilities};
pub use checkpoint::{
    load_meta, load_predictor, restore_parameters, save_predictor, split_meta, CheckpointMeta,
};
pub use data::{build_dataset, build_sample, oversample_indices, Sample, TARGET_SCALE};
pub use dynamic::{
    build_dynamic_sample, train_dynamic, DynamicIrConfig, DynamicIrPredictor, DynamicSample,
};
pub use fixer::{predict_case, suggest_pad_fixes, PadFix};
pub use infer::{
    prepare_parts, prepare_window_parts, restore_prediction, InferenceSession, InputSpec,
    Prediction, PreparedInput,
};
pub use lnt::{Lnt, LntConfig};
pub use metrics::{
    average, cc, confusion, f1_score, hotspot_mask, mae, CaseMetrics, Confusion, HOTSPOT_FRAC,
};
pub use model::{FusionModule, IrPredictor, LmmIr, LmmIrConfig};
pub use pipeline::{evaluate, golden_speedups};
pub use pointcloud::{NetlistPoint, PointCloud};
pub use train::{train, TrainConfig, TrainReport};
pub use zoo::{CfirstNet, CfirstNetConfig, WacaUnet, WacaUnetConfig};
