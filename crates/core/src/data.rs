//! Dataset assembly: generated cases → model-ready samples.
//!
//! A [`Sample`] bundles everything one training/evaluation step needs:
//! all three static feature stacks (basic 3-channel, extended 6-channel,
//! comprehensive 8-channel) adjusted to the training size, the netlist
//! point cloud, the adjusted target and the original-resolution ground
//! truth for faithful evaluation.

use crate::pointcloud::PointCloud;
use lmmir_features::{ir_drop_map, FeatureStack, Raster, SpatialInfo};
use lmmir_pdn::{CaseKind, CaseSpec};
use lmmir_solver::SolveIrDropError;
use lmmir_tensor::{Tensor, Var};

/// Fixed factor applied to IR targets during training (predictions are
/// divided by it on restore). Golden drops are ~10 mV on the standard
/// stack; scaling to ~0.2 V conditions the MSE regression without touching
/// the physics or the reported metrics.
pub const TARGET_SCALE: f32 = 20.0;

/// One model-ready data point.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Case id (e.g. `testcase10`).
    pub id: String,
    /// Split membership (drives over-sampling).
    pub kind: CaseKind,
    /// Basic 3-channel images `[3, S, S]`, adjusted + normalized.
    pub images_basic: Tensor,
    /// Extended 6-channel images `[6, S, S]`, adjusted + normalized.
    pub images_extended: Tensor,
    /// Comprehensive 8-channel images `[8, S, S]`, adjusted + normalized
    /// (extended + effective-resistance + pad-distance maps).
    pub images_comprehensive: Tensor,
    /// Netlist point cloud (full; models subsample to their budget).
    pub cloud: PointCloud,
    /// Adjusted ground-truth IR map `[1, S, S]`, in volts × [`TARGET_SCALE`].
    pub target: Tensor,
    /// How the maps were spatially adjusted (for restoring predictions).
    pub info: SpatialInfo,
    /// Original-resolution ground truth (volts).
    pub truth: Raster,
    /// Supply voltage.
    pub vdd: f64,
    /// Wall-clock seconds the golden solver took (the cost the predictor
    /// amortizes — the motivation of the whole paper).
    pub golden_seconds: f64,
    /// Node count of the netlist (Table II statistic).
    pub nodes: usize,
}

impl Sample {
    /// Images matching a model's expected channel count, as a `[1, C, S, S]`
    /// tensor.
    ///
    /// `1` selects the current map alone (IRPnet's physics-window input),
    /// `3` the basic stack, `6` the extended stack, `8` the comprehensive
    /// stack.
    ///
    /// # Panics
    ///
    /// Panics for channel counts other than 1, 3, 6 or 8.
    #[must_use]
    pub fn images_tensor_for(&self, channels: usize) -> Tensor {
        let t = match channels {
            1 => {
                let d = self.images_basic.dims().to_vec();
                let current = self
                    .images_basic
                    .reshape(&[d[0], d[1] * d[2]])
                    .and_then(|t| t.slice_axis(0, 0, 1))
                    .expect("basic stack has a current channel");
                return current
                    .reshape(&[1, 1, d[1], d[2]])
                    .expect("slice keeps spatial numel");
            }
            3 => &self.images_basic,
            6 => &self.images_extended,
            8 => &self.images_comprehensive,
            other => panic!("no feature stack with {other} channels"),
        };
        let d = t.dims();
        t.reshape(&[1, d[0], d[1], d[2]])
            .expect("adding batch axis preserves numel")
    }

    /// [`Sample::images_tensor_for`] wrapped as a constant variable, ready
    /// for a forward pass.
    ///
    /// # Panics
    ///
    /// Panics for channel counts other than 1, 3, 6 or 8.
    #[must_use]
    pub fn images_for(&self, channels: usize) -> Var {
        Var::constant(self.images_tensor_for(channels))
    }

    /// Target as a `[1, 1, S, S]` constant variable.
    #[must_use]
    pub fn target_var(&self) -> Var {
        let d = self.target.dims();
        Var::constant(
            self.target
                .reshape(&[1, d[0], d[1], d[2]])
                .expect("adding batch axis preserves numel"),
        )
    }

    /// Restores a model prediction `[1, 1, S, S]` to the original chip
    /// resolution and to volts (undoing [`TARGET_SCALE`]) for metric
    /// computation. Delegates to [`crate::infer::restore_prediction`], the
    /// path the serving layer uses too.
    ///
    /// # Panics
    ///
    /// Panics when `pred` does not have the adjusted sample shape.
    #[must_use]
    pub fn restore_prediction(&self, pred: &Tensor) -> Raster {
        crate::infer::restore_prediction(self.info, pred)
    }
}

/// Builds a sample from a case spec: generates the PDN, runs the golden
/// solver, extracts features and adjusts everything to `input_size`.
///
/// # Errors
///
/// Returns [`SolveIrDropError`] when the golden solve fails.
pub fn build_sample(spec: &CaseSpec, input_size: usize) -> Result<Sample, SolveIrDropError> {
    let case = spec.generate();
    let t0 = std::time::Instant::now();
    let ir = case.solve()?;
    let golden_seconds = t0.elapsed().as_secs_f64();
    let (w, h) = (case.power.width(), case.power.height());
    let dbu = case.tech.dbu_per_um;

    let truth = ir_drop_map(&ir, &case.netlist, w, h, dbu);
    let (truth_adj, info) = lmmir_features::spatial::spatial_adjust(&truth, input_size);

    let extended = FeatureStack::extended(&case);
    let (ext_adj, _) = extended.adjusted_normalized(input_size);
    let basic = FeatureStack::basic(&case);
    let (basic_adj, _) = basic.adjusted_normalized(input_size);
    let comprehensive = FeatureStack::comprehensive(&case);
    let (comp_adj, _) = comprehensive.adjusted_normalized(input_size);

    let cloud = PointCloud::from_netlist(&case.netlist, dbu, w as f64, h as f64);
    let target = truth_adj
        .to_tensor()
        .scale(TARGET_SCALE)
        .reshape(&[1, input_size, input_size])
        .expect("adjusted truth is input_size²");

    Ok(Sample {
        id: spec.id.clone(),
        kind: spec.kind,
        images_basic: basic_adj.to_tensor(),
        images_extended: ext_adj.to_tensor(),
        images_comprehensive: comp_adj.to_tensor(),
        cloud,
        target,
        info,
        truth,
        vdd: case.tech.vdd,
        golden_seconds,
        nodes: case.stats().nodes,
    })
}

/// Builds samples for a list of specs.
///
/// # Errors
///
/// Returns the first golden-solve failure.
pub fn build_dataset(
    specs: &[CaseSpec],
    input_size: usize,
) -> Result<Vec<Sample>, SolveIrDropError> {
    specs.iter().map(|s| build_sample(s, input_size)).collect()
}

/// Over-sampled index list following the paper's recipe (§IV-A): each fake
/// case appears `fake_times`, each real case `real_times`. Hidden cases are
/// never included in training.
#[must_use]
pub fn oversample_indices(samples: &[Sample], fake_times: usize, real_times: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let times = match s.kind {
            CaseKind::Fake => fake_times,
            CaseKind::Real => real_times,
            CaseKind::Hidden => 0,
        };
        out.extend(std::iter::repeat(i).take(times));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_pdn::CaseKind;

    fn sample() -> Sample {
        build_sample(&CaseSpec::new("t", 20, 20, 6, CaseKind::Fake), 32).unwrap()
    }

    #[test]
    fn sample_shapes_are_consistent() {
        let s = sample();
        assert_eq!(s.images_basic.dims(), &[3, 32, 32]);
        assert_eq!(s.images_extended.dims(), &[6, 32, 32]);
        assert_eq!(s.images_comprehensive.dims(), &[8, 32, 32]);
        assert_eq!(s.target.dims(), &[1, 32, 32]);
        assert_eq!(s.truth.width(), 20);
        assert!(s.nodes > 0);
        assert!(s.golden_seconds > 0.0);
        assert!(!s.cloud.is_empty());
    }

    #[test]
    fn images_for_adds_batch_axis() {
        let s = sample();
        assert_eq!(s.images_for(3).dims(), vec![1, 3, 32, 32]);
        assert_eq!(s.images_for(6).dims(), vec![1, 6, 32, 32]);
        assert_eq!(s.images_for(8).dims(), vec![1, 8, 32, 32]);
        assert_eq!(s.target_var().dims(), vec![1, 1, 32, 32]);
    }

    #[test]
    #[should_panic(expected = "no feature stack")]
    fn images_for_rejects_odd_channels() {
        let _ = sample().images_for(4);
    }

    #[test]
    fn restore_prediction_round_trips_target() {
        let s = sample();
        // Feeding the adjusted target back must reproduce the original truth
        // exactly for padded samples.
        let pred = s.target.reshape(&[1, 1, 32, 32]).unwrap();
        let restored = s.restore_prediction(&pred);
        assert_eq!(restored.width(), 20);
        for (a, b) in restored.data().iter().zip(s.truth.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn oversampling_respects_kinds() {
        let mut samples = vec![sample()];
        samples.push(Sample {
            kind: CaseKind::Real,
            ..samples[0].clone()
        });
        samples.push(Sample {
            kind: CaseKind::Hidden,
            ..samples[0].clone()
        });
        let ix = oversample_indices(&samples, 2, 5);
        assert_eq!(ix.iter().filter(|&&i| i == 0).count(), 2);
        assert_eq!(ix.iter().filter(|&&i| i == 1).count(), 5);
        assert_eq!(ix.iter().filter(|&&i| i == 2).count(), 0);
    }

    #[test]
    fn scaled_sample_restores_to_original_size() {
        // A case larger than the input size gets scaled, not padded.
        let s = build_sample(&CaseSpec::new("big", 40, 40, 7, CaseKind::Fake), 32).unwrap();
        assert!(matches!(
            s.info,
            SpatialInfo::Scaled {
                width: 40,
                height: 40
            }
        ));
        let pred = s.target.reshape(&[1, 1, 32, 32]).unwrap();
        let restored = s.restore_prediction(&pred);
        assert_eq!(restored.width(), 40);
    }
}
