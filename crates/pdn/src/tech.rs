//! PDN technology description: metal layers, pitches, resistances.

/// Routing direction of a metal layer's power stripes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerDir {
    /// Stripes run along X (constant Y per stripe).
    Horizontal,
    /// Stripes run along Y (constant X per stripe).
    Vertical,
}

/// One metal layer of the PDN stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Metal layer id (`m1` → 1).
    pub id: u8,
    /// Stripe direction.
    pub dir: LayerDir,
    /// Stripe pitch in µm.
    pub pitch_um: f64,
    /// Wire resistance per µm of stripe length (Ω/µm). Lower layers are
    /// thinner and therefore much more resistive — the 28 nm → 7 nm
    /// resistance blow-up motivating the paper.
    pub res_per_um: f64,
}

/// A PDN technology: ordered layer stack (bottom first), via resistances
/// between adjacent layers, pad placement pitch and supply voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnTech {
    /// Layers from bottom (`m1`) to top.
    pub layers: Vec<LayerSpec>,
    /// Via resistance (Ω) between `layers[i]` and `layers[i+1]`.
    pub via_res: Vec<f64>,
    /// C4 pad pitch in µm on the top layer.
    pub pad_pitch_um: f64,
    /// Supply voltage at the pads (V).
    pub vdd: f64,
    /// Database units per µm (the contest uses 2000).
    pub dbu_per_um: i64,
}

impl PdnTech {
    /// A four-layer stack (m1/m4/m7/m9) with contest-like proportions,
    /// suitable for chips tens to hundreds of µm on a side.
    #[must_use]
    pub fn standard() -> Self {
        PdnTech {
            layers: vec![
                LayerSpec {
                    id: 1,
                    dir: LayerDir::Horizontal,
                    pitch_um: 1.0,
                    res_per_um: 2.0,
                },
                LayerSpec {
                    id: 4,
                    dir: LayerDir::Vertical,
                    pitch_um: 2.0,
                    res_per_um: 0.8,
                },
                LayerSpec {
                    id: 7,
                    dir: LayerDir::Horizontal,
                    pitch_um: 4.0,
                    res_per_um: 0.3,
                },
                LayerSpec {
                    id: 9,
                    dir: LayerDir::Vertical,
                    pitch_um: 8.0,
                    res_per_um: 0.1,
                },
            ],
            via_res: vec![4.0, 2.0, 1.0],
            pad_pitch_um: 16.0,
            vdd: 1.1,
            dbu_per_um: 2000,
        }
    }

    /// Validates structural invariants (alternating directions, one fewer
    /// via entry than layers, positive values).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.len() < 2 {
            return Err("technology needs at least two layers".to_string());
        }
        if self.via_res.len() + 1 != self.layers.len() {
            return Err(format!(
                "expected {} via resistances, got {}",
                self.layers.len() - 1,
                self.via_res.len()
            ));
        }
        for w in self.layers.windows(2) {
            if w[0].dir == w[1].dir {
                return Err(format!(
                    "adjacent layers m{} and m{} must alternate direction",
                    w[0].id, w[1].id
                ));
            }
            if w[0].id >= w[1].id {
                return Err("layer ids must strictly increase".to_string());
            }
        }
        for l in &self.layers {
            if l.pitch_um <= 0.0 || l.res_per_um <= 0.0 {
                return Err(format!("layer m{} has non-positive pitch/resistance", l.id));
            }
        }
        if self.via_res.iter().any(|&r| r <= 0.0) {
            return Err("via resistances must be positive".to_string());
        }
        if self.pad_pitch_um <= 0.0 || self.vdd <= 0.0 || self.dbu_per_um <= 0 {
            return Err("pad pitch, vdd and dbu scale must be positive".to_string());
        }
        Ok(())
    }

    /// Stripe cross-axis positions (µm) of a layer within `[0, extent_um]`.
    ///
    /// Stripes start at half a pitch from the edge so chips of any size get
    /// at least one stripe.
    #[must_use]
    pub fn stripe_positions(&self, layer: &LayerSpec, extent_um: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut p = layer.pitch_um * 0.5;
        while p < extent_um {
            out.push(p);
            p += layer.pitch_um;
        }
        if out.is_empty() {
            out.push(extent_um * 0.5);
        }
        out
    }

    /// Converts µm to DBU, rounding to the nearest unit.
    #[must_use]
    pub fn to_dbu(&self, um: f64) -> i64 {
        (um * self.dbu_per_um as f64).round() as i64
    }

    /// Converts DBU to µm.
    #[must_use]
    pub fn to_um(&self, dbu: i64) -> f64 {
        dbu as f64 / self.dbu_per_um as f64
    }
}

impl Default for PdnTech {
    fn default() -> Self {
        PdnTech::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_tech_is_valid() {
        PdnTech::standard().validate().unwrap();
    }

    #[test]
    fn validation_catches_direction_clash() {
        let mut t = PdnTech::standard();
        t.layers[1].dir = LayerDir::Horizontal;
        assert!(t.validate().unwrap_err().contains("alternate"));
    }

    #[test]
    fn validation_catches_via_count() {
        let mut t = PdnTech::standard();
        t.via_res.pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_nonpositive() {
        let mut t = PdnTech::standard();
        t.layers[0].pitch_um = 0.0;
        assert!(t.validate().is_err());
        let mut t2 = PdnTech::standard();
        t2.vdd = 0.0;
        assert!(t2.validate().is_err());
    }

    #[test]
    fn stripe_positions_cover_extent() {
        let t = PdnTech::standard();
        let m1 = t.layers[0];
        let pos = t.stripe_positions(&m1, 10.0);
        assert_eq!(pos.len(), 10); // pitch 1.0 over 10 µm, starting at 0.5
        assert!(pos[0] >= 0.0 && *pos.last().unwrap() <= 10.0);
    }

    #[test]
    fn tiny_extent_still_gets_one_stripe() {
        let t = PdnTech::standard();
        let m9 = t.layers[3];
        let pos = t.stripe_positions(&m9, 2.0); // pitch 8 > extent
        assert_eq!(pos.len(), 1);
    }

    #[test]
    fn dbu_round_trip() {
        let t = PdnTech::standard();
        assert_eq!(t.to_dbu(1.0), 2000);
        assert!((t.to_um(t.to_dbu(3.25)) - 3.25).abs() < 1e-9);
    }
}
