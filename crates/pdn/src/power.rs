//! Synthetic power (current-draw) maps.
//!
//! Real designs concentrate switching activity in hotspots (cores, caches,
//! SerDes); BeGAN models this with learned generators. We use a mixture of
//! anisotropic Gaussian blobs over a uniform background, which produces the
//! same qualitative structure the predictor must learn: smooth fields with
//! localized high-current regions whose IR impact depends on pad distance.

use rand::Rng;

/// A per-µm² current-draw map (`data[y * width + x]` in amperes).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl PowerMap {
    /// Creates an all-zero map.
    #[must_use]
    pub fn zeros(width: usize, height: usize) -> Self {
        PowerMap {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a map from raw values.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    #[must_use]
    pub fn from_vec(width: usize, height: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), width * height, "power map size mismatch");
        PowerMap {
            width,
            height,
            data,
        }
    }

    /// Synthesizes a hotspot map.
    ///
    /// * `hotspots` — number of Gaussian blobs.
    /// * `total_current` — the map is rescaled so all pixels sum to this
    ///   value (amperes), making IR-drop magnitudes controllable.
    #[must_use]
    pub fn synth(
        width: usize,
        height: usize,
        hotspots: usize,
        total_current: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let mut map = PowerMap::zeros(width, height);
        let (wf, hf) = (width as f64, height as f64);
        // Uniform background: idle logic draws a little everywhere.
        let background = 0.15;
        for v in &mut map.data {
            *v = background * (0.5 + rng.gen::<f64>());
        }
        for _ in 0..hotspots {
            let cx = rng.gen_range(0.1..0.9) * wf;
            let cy = rng.gen_range(0.1..0.9) * hf;
            let sx = rng.gen_range(0.03..0.15) * wf;
            let sy = rng.gen_range(0.03..0.15) * hf;
            let amp = rng.gen_range(1.0..4.0);
            for y in 0..height {
                for x in 0..width {
                    let dx = (x as f64 + 0.5 - cx) / sx;
                    let dy = (y as f64 + 0.5 - cy) / sy;
                    map.data[y * width + x] += amp * (-0.5 * (dx * dx + dy * dy)).exp();
                }
            }
        }
        let sum: f64 = map.data.iter().sum();
        if sum > 0.0 {
            let k = total_current / sum;
            for v in &mut map.data {
                *v *= k;
            }
        }
        map
    }

    /// Map width (µm / pixels).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height (µm / pixels).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw values, row-major.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Current at a pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Total current over the map (A).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum per-pixel current (A).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// Adds `k * other` into this map, pixelwise.
    ///
    /// # Panics
    ///
    /// Panics when the maps have different dimensions.
    pub fn add_scaled(&mut self, other: &PowerMap, k: f64) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "power map size mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Multiplies every pixel by `k`.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Raises each pixel to the max of itself and `other` (pixelwise max).
    ///
    /// # Panics
    ///
    /// Panics when the maps have different dimensions.
    pub fn max_in_place(&mut self, other: &PowerMap) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "power map size mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.max(*b);
        }
    }

    /// Pixelwise maximum over a set of maps — the *envelope* a set of
    /// per-window power maps induces (PowerNet's worst-case instantaneous
    /// draw per pixel).
    ///
    /// # Panics
    ///
    /// Panics when `maps` is empty or dimensions disagree.
    #[must_use]
    pub fn envelope(maps: &[PowerMap]) -> PowerMap {
        let mut out = maps.first().expect("envelope of no maps").clone();
        for m in &maps[1..] {
            out.max_in_place(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synth_normalizes_total_current() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = PowerMap::synth(48, 48, 3, 2.5, &mut rng);
        assert!((m.total() - 2.5).abs() < 1e-9);
        assert_eq!(m.width(), 48);
        assert_eq!(m.height(), 48);
    }

    #[test]
    fn synth_has_hotspot_contrast() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = PowerMap::synth(64, 64, 4, 1.0, &mut rng);
        let mean = m.total() / (64.0 * 64.0);
        assert!(
            m.peak() > 3.0 * mean,
            "peak {} should stand out over mean {mean}",
            m.peak()
        );
    }

    #[test]
    fn synth_is_deterministic_per_seed() {
        let a = PowerMap::synth(16, 16, 2, 1.0, &mut StdRng::seed_from_u64(9));
        let b = PowerMap::synth(16, 16, 2, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = PowerMap::synth(16, 16, 2, 1.0, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn all_values_nonnegative() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = PowerMap::synth(32, 32, 5, 1.0, &mut rng);
        assert!(m.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_hotspots_gives_background_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = PowerMap::synth(16, 16, 0, 1.0, &mut rng);
        // Background is jittered uniform: max/min ratio bounded by 3.
        let max = m.peak();
        let min = m.data().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 3.01);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_validates() {
        let _ = PowerMap::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn add_scaled_and_scale_combine_linearly() {
        let mut a = PowerMap::from_vec(2, 1, vec![1.0, 2.0]);
        let b = PowerMap::from_vec(2, 1, vec![10.0, 20.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn envelope_is_pixelwise_max() {
        let a = PowerMap::from_vec(2, 1, vec![1.0, 5.0]);
        let b = PowerMap::from_vec(2, 1, vec![3.0, 2.0]);
        let e = PowerMap::envelope(&[a, b]);
        assert_eq!(e.data(), &[3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn max_in_place_validates_shape() {
        let mut a = PowerMap::zeros(2, 2);
        a.max_in_place(&PowerMap::zeros(3, 2));
    }
}
