//! # lmmir-pdn
//!
//! Parametric synthesis of power-delivery-network benchmarks in the style of
//! the ICCAD-2023 CAD contest and BeGAN. This crate substitutes for the
//! contest's (non-redistributable) dataset: it generates multi-layer PDN
//! SPICE netlists with realistic ingredients — rail/stripe geometry per
//! metal layer, via resistances, C4 pad arrays, and synthetic power maps
//! with hotspots — that exercise exactly the code paths LMM-IR consumes
//! (netlist point clouds + circuit feature maps + golden IR solves).
//!
//! The [`contest`] module reproduces the *shape* of the contest benchmark
//! suite: ten hidden testcases whose raster sizes and relative node counts
//! follow Table II of the paper, plus fake/real training splits with the
//! paper's over-sampling recipe.
//!
//! ```
//! use lmmir_pdn::{CaseSpec, CaseKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CaseSpec::new("demo", 32, 32, 7, CaseKind::Fake);
//! let case = spec.generate();
//! assert!(case.netlist.stats().voltage_sources > 0);
//! let ir = case.solve()?; // golden ground truth
//! assert!(ir.worst_drop() >= 0.0);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod contest;
pub mod export;
pub mod power;
pub mod tech;
pub mod vectors;

pub use builder::{build_netlist, BuildOptions};
pub use contest::{hidden_suite, training_suite, Case, CaseKind, CaseSpec, TESTCASE_SHAPES};
pub use export::{export_case, export_suite, ExportError};
pub use power::PowerMap;
pub use tech::{LayerDir, LayerSpec, PdnTech};
pub use vectors::{DynamicCase, DynamicWorkload, VectorSpec, MAX_WINDOWS};
