//! ICCAD-2023-style benchmark suites (Table II of the paper).
//!
//! The contest distributed 100 synthetic ("fake") training cases, 10 real
//! training cases and evaluated on 10 hidden cases whose statistics the
//! paper reports in Table II. This module regenerates suites with the same
//! *shape*: hidden testcases keep the paper's raster-size ordering (scaled
//! by a user-chosen factor, since full-scale 835×835 µm chips are golden-
//! solver-bound on laptop CPUs), and fake/real cases are drawn from two
//! different parameter distributions so "trained on fake, tested on hidden"
//! exhibits the same distribution shift the contest had.

use crate::builder::{build_netlist, BuildOptions};
use crate::power::PowerMap;
use crate::tech::PdnTech;
use lmmir_solver::{solve_ir_drop, CgConfig, IrDrop, SolveIrDropError};
use lmmir_spice::{Netlist, NetlistStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paper Table II: (testcase id, raster side in pixels at full scale).
///
/// The paper's node counts (85 591 … 181 206) follow the same area ordering;
/// our generator reproduces the ordering automatically because node count
/// scales with area.
pub const TESTCASE_SHAPES: [(&str, usize); 10] = [
    ("testcase7", 601),
    ("testcase8", 601),
    ("testcase9", 835),
    ("testcase10", 835),
    ("testcase13", 257),
    ("testcase14", 257),
    ("testcase15", 489),
    ("testcase16", 489),
    ("testcase19", 870),
    ("testcase20", 870),
];

/// Default current density (A per µm²) — calibrated so worst-case IR drop
/// lands near ~1 % of VDD on the standard stack (≈ 10 mV), which keeps the
/// MAE column in the same 1e-4 V reporting unit regime as the paper.
pub const DEFAULT_CURRENT_DENSITY: f64 = 1e-4;

/// Which split a case belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// Synthetic training case (contest "fake"; BeGAN-style).
    Fake,
    /// Realistic training case.
    Real,
    /// Held-out evaluation case (Table II / Table III).
    Hidden,
}

/// Full description of one generated benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Case identifier (e.g. `testcase10`).
    pub id: String,
    /// Chip width in µm (= feature-map pixels).
    pub width: usize,
    /// Chip height in µm.
    pub height: usize,
    /// RNG seed controlling the power map and options.
    pub seed: u64,
    /// Split membership.
    pub kind: CaseKind,
    /// Number of current hotspots.
    pub hotspots: usize,
    /// Pad pitch override (µm).
    pub pad_pitch_um: Option<f64>,
    /// Pad keep-out rectangle (chip fractions).
    pub pad_keepout: Option<(f64, f64, f64, f64)>,
    /// Weak-via region (rectangle + resistance multiplier).
    pub weak_via_region: Option<((f64, f64, f64, f64), f64)>,
    /// Extra what-if pads at explicit µm positions.
    pub extra_pads: Vec<(f64, f64)>,
    /// Total drawn current (A).
    pub total_current: f64,
}

impl CaseSpec {
    /// Creates a spec with defaults derived from the area and kind.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        width: usize,
        height: usize,
        seed: u64,
        kind: CaseKind,
    ) -> Self {
        let area = (width * height) as f64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let hotspots = match kind {
            CaseKind::Fake => rng.gen_range(1..=4),
            CaseKind::Real | CaseKind::Hidden => rng.gen_range(3..=7),
        };
        // Real/hidden cases frequently have pad-starved regions.
        let pad_keepout = match kind {
            CaseKind::Fake => None,
            CaseKind::Real | CaseKind::Hidden => {
                if rng.gen_bool(0.7) {
                    let x0 = rng.gen_range(0.0..0.5);
                    let y0 = rng.gen_range(0.0..0.5);
                    Some((
                        x0,
                        y0,
                        x0 + rng.gen_range(0.2..0.45),
                        y0 + rng.gen_range(0.2..0.45),
                    ))
                } else {
                    None
                }
            }
        };
        let pad_pitch_um = match kind {
            CaseKind::Fake => None,
            CaseKind::Real | CaseKind::Hidden => Some(16.0 * rng.gen_range(0.75..1.5)),
        };
        // Realistic designs occasionally carry degraded via arrays — signal
        // that only the netlist modality resolves precisely.
        let weak_via_region = match kind {
            CaseKind::Fake => None,
            CaseKind::Real | CaseKind::Hidden => {
                if rng.gen_bool(0.5) {
                    let x0 = rng.gen_range(0.0..0.6);
                    let y0 = rng.gen_range(0.0..0.6);
                    let rect = (
                        x0,
                        y0,
                        x0 + rng.gen_range(0.2..0.4),
                        y0 + rng.gen_range(0.2..0.4),
                    );
                    Some((rect, rng.gen_range(3.0..8.0)))
                } else {
                    None
                }
            }
        };
        CaseSpec {
            id: id.into(),
            width,
            height,
            seed,
            kind,
            hotspots,
            pad_pitch_um,
            pad_keepout,
            weak_via_region,
            extra_pads: Vec::new(),
            total_current: DEFAULT_CURRENT_DENSITY * area,
        }
    }

    /// The netlist-builder options this spec implies. Exposed so dynamic
    /// workloads can rebuild the PDN against per-window power maps with
    /// identical geometry (see [`crate::vectors`]).
    #[must_use]
    pub fn build_options(&self) -> BuildOptions {
        BuildOptions {
            pad_pitch_um: self.pad_pitch_um,
            pad_keepout: self.pad_keepout,
            weak_via_region: self.weak_via_region,
            extra_pads: self.extra_pads.clone(),
        }
    }

    /// Generates the case: synthesizes the power map and builds the netlist.
    #[must_use]
    pub fn generate(&self) -> Case {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let power = PowerMap::synth(
            self.width,
            self.height,
            self.hotspots,
            self.total_current,
            &mut rng,
        );
        let tech = PdnTech::standard();
        let netlist = build_netlist(&tech, &power, &self.build_options());
        Case {
            spec: self.clone(),
            tech,
            power,
            netlist,
        }
    }
}

/// A generated benchmark: spec, technology, power map and netlist.
#[derive(Debug, Clone)]
pub struct Case {
    /// The generating spec.
    pub spec: CaseSpec,
    /// Technology the PDN was built with.
    pub tech: PdnTech,
    /// Per-pixel current map (A), 1 µm/pixel.
    pub power: PowerMap,
    /// The SPICE netlist.
    pub netlist: Netlist,
}

impl Case {
    /// Netlist statistics (node counts for Table II).
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        self.netlist.stats()
    }

    /// Runs the golden solver on this case.
    ///
    /// # Errors
    ///
    /// Returns [`SolveIrDropError`] when the netlist cannot be solved
    /// (should not happen for generated cases).
    pub fn solve(&self) -> Result<IrDrop, SolveIrDropError> {
        solve_ir_drop(&self.netlist, CgConfig::default())
    }
}

/// The ten hidden testcases of Table II, scaled by `scale`.
///
/// `scale = 1.0` reproduces full-size rasters (835×835 etc.); the quick
/// harness uses `1/8` so the golden solves and model training stay
/// laptop-friendly while preserving the relative size ordering.
#[must_use]
pub fn hidden_suite(scale: f64, base_seed: u64) -> Vec<CaseSpec> {
    TESTCASE_SHAPES
        .iter()
        .enumerate()
        .map(|(i, (id, side))| {
            let s = ((*side as f64 * scale).round() as usize).max(16);
            CaseSpec::new(
                *id,
                s,
                s,
                base_seed.wrapping_add(1000 + i as u64),
                CaseKind::Hidden,
            )
        })
        .collect()
}

/// Training suite: `n_fake` BeGAN-style cases plus `n_real` realistic cases.
///
/// Sizes are drawn around the (scaled) hidden sizes. The paper over-samples
/// fake ×10 and real ×20 at training time; that recipe lives in the trainer,
/// not here.
#[must_use]
pub fn training_suite(n_fake: usize, n_real: usize, scale: f64, base_seed: u64) -> Vec<CaseSpec> {
    let mut out = Vec::with_capacity(n_fake + n_real);
    let mut rng = StdRng::seed_from_u64(base_seed);
    let sides: Vec<usize> = TESTCASE_SHAPES
        .iter()
        .map(|(_, s)| ((*s as f64 * scale).round() as usize).max(16))
        .collect();
    for i in 0..n_fake {
        let side = sides[rng.gen_range(0..sides.len())];
        let jitter = rng.gen_range(0.8..1.2);
        let s = ((side as f64 * jitter).round() as usize).max(16);
        out.push(CaseSpec::new(
            format!("fake{i}"),
            s,
            s,
            base_seed.wrapping_add(i as u64),
            CaseKind::Fake,
        ));
    }
    for i in 0..n_real {
        let side = sides[rng.gen_range(0..sides.len())];
        out.push(CaseSpec::new(
            format!("real{i}"),
            side,
            side,
            base_seed.wrapping_add(500 + i as u64),
            CaseKind::Real,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_suite_matches_table2_ordering() {
        let suite = hidden_suite(1.0 / 8.0, 42);
        assert_eq!(suite.len(), 10);
        assert_eq!(suite[0].id, "testcase7");
        // Size ordering follows Table II: 13/14 smallest, 19/20 largest.
        let w: Vec<usize> = suite.iter().map(|s| s.width).collect();
        assert!(w[4] < w[0] && w[0] < w[2] && w[2] < w[8]);
        assert!(suite.iter().all(|s| s.kind == CaseKind::Hidden));
    }

    #[test]
    fn hidden_suite_scales() {
        let full = hidden_suite(1.0, 0);
        assert_eq!(full[2].width, 835);
        let eighth = hidden_suite(0.125, 0);
        assert_eq!(eighth[2].width, 104);
    }

    #[test]
    fn specs_are_deterministic() {
        let a = CaseSpec::new("x", 32, 32, 7, CaseKind::Real);
        let b = CaseSpec::new("x", 32, 32, 7, CaseKind::Real);
        assert_eq!(a, b);
        let ca = a.generate();
        let cb = b.generate();
        assert_eq!(ca.netlist, cb.netlist);
    }

    #[test]
    fn generated_case_is_solvable_with_sane_drop() {
        let case = CaseSpec::new("t", 32, 32, 3, CaseKind::Hidden).generate();
        let ir = case.solve().unwrap();
        let frac = ir.worst_drop() / case.tech.vdd;
        assert!(
            frac > 0.001 && frac < 0.5,
            "worst drop fraction {frac} out of expected band"
        );
    }

    #[test]
    fn node_count_scales_with_area() {
        let small = CaseSpec::new("s", 24, 24, 1, CaseKind::Fake).generate();
        let large = CaseSpec::new("l", 48, 48, 1, CaseKind::Fake).generate();
        assert!(large.stats().nodes > 2 * small.stats().nodes);
    }

    #[test]
    fn training_suite_counts_and_kinds() {
        let suite = training_suite(8, 3, 0.125, 9);
        assert_eq!(suite.len(), 11);
        assert_eq!(suite.iter().filter(|s| s.kind == CaseKind::Fake).count(), 8);
        assert_eq!(suite.iter().filter(|s| s.kind == CaseKind::Real).count(), 3);
        // ids unique
        let mut ids: Vec<&str> = suite.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 11);
    }

    #[test]
    fn real_cases_use_distinct_distribution() {
        // Across several seeds, real cases should show keepouts/pad-pitch
        // overrides that fake cases never have.
        let reals: Vec<CaseSpec> = (0..10)
            .map(|s| CaseSpec::new("r", 32, 32, s, CaseKind::Real))
            .collect();
        let fakes: Vec<CaseSpec> = (0..10)
            .map(|s| CaseSpec::new("f", 32, 32, s, CaseKind::Fake))
            .collect();
        assert!(reals.iter().any(|s| s.pad_keepout.is_some()));
        assert!(fakes.iter().all(|s| s.pad_keepout.is_none()));
        assert!(fakes.iter().all(|s| s.pad_pitch_um.is_none()));
    }
}
