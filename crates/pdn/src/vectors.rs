//! Synthetic vector-based dynamic power workloads (PowerNet-style).
//!
//! Dynamic IR drop depends on *when* instances switch, not only where they
//! sit. PowerNet decomposes a switching-activity trace into W time windows
//! and builds one toggle-weighted power map per window; the model predicts
//! per-window IR and takes a max over windows. This module generates that
//! decomposition synthetically: a deterministic set of instances (placed
//! Gaussian footprints with base currents) plus per-window toggle vectors
//! drawn from clock-gated burst schedules, so different windows are
//! dominated by different instances — exactly the structure that makes the
//! max-over-windows head differ from predicting on the average map.
//!
//! Everything is seeded: the same [`VectorSpec`] always produces bitwise
//! identical windows, which train/eval splits and the served-vs-offline
//! parity tests rely on.
//!
//! ```
//! use lmmir_pdn::{CaseKind, CaseSpec, DynamicCase};
//!
//! let spec = CaseSpec::new("dyn0", 24, 24, 7, CaseKind::Fake);
//! let dyn_case = DynamicCase::generate(&spec, 4);
//! assert_eq!(dyn_case.windows.len(), 4);
//! // The envelope the netlist was built from is the pixelwise max.
//! assert!(dyn_case.case.power.peak() >= dyn_case.windows[0].peak());
//! ```

use crate::builder::build_netlist;
use crate::contest::{Case, CaseSpec};
use crate::power::PowerMap;
use crate::tech::PdnTech;
use lmmir_spice::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper bound on windows the generator accepts — matches the serving
/// protocol's cap so a generated workload is always transmittable.
pub const MAX_WINDOWS: usize = 64;

/// Parameters of a synthetic vector workload.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSpec {
    /// Number of time windows W (1..=[`MAX_WINDOWS`]).
    pub windows: usize,
    /// Number of switching instances placed on the die.
    pub instances: usize,
    /// Mean per-window total current (A); individual windows vary around it.
    pub total_current: f64,
    /// RNG seed — same seed, same workload, bitwise.
    pub seed: u64,
}

impl VectorSpec {
    /// Derives a vector spec from a benchmark case spec: instance count
    /// scales with area, current and seed come from the case.
    ///
    /// # Panics
    ///
    /// Panics when `windows` is 0 or exceeds [`MAX_WINDOWS`].
    #[must_use]
    pub fn for_case(spec: &CaseSpec, windows: usize) -> Self {
        assert!(
            (1..=MAX_WINDOWS).contains(&windows),
            "window count {windows} out of 1..={MAX_WINDOWS}"
        );
        let area = spec.width * spec.height;
        VectorSpec {
            windows,
            instances: (area / 96).clamp(8, 64),
            total_current: spec.total_current,
            seed: spec.seed ^ 0xD1AC_0DE5,
        }
    }
}

/// One switching instance: a Gaussian current footprint plus a burst
/// schedule describing which windows it toggles in.
struct Instance {
    cx: f64,
    cy: f64,
    sx: f64,
    sy: f64,
    /// Peak current the instance draws when fully toggling (A, pre-scale).
    current: f64,
    /// First window of its activity burst.
    phase: usize,
    /// Burst length in windows.
    duty: usize,
    /// Burst repetition period in windows.
    period: usize,
}

impl Instance {
    /// Toggle activity of this instance in window `w`: 1.0 inside its burst,
    /// a small residual outside (clock gating never reaches exactly zero).
    fn activity(&self, w: usize, jitter: f64) -> f64 {
        let pos = (w + self.period - self.phase % self.period) % self.period;
        let base = if pos < self.duty { 1.0 } else { 0.08 };
        (base * jitter).max(0.0)
    }
}

/// A generated dynamic workload: W per-window toggle-weighted power maps
/// plus their pixelwise-max envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicWorkload {
    /// Per-window power maps, all the same dimensions.
    pub windows: Vec<PowerMap>,
    /// Pixelwise max over `windows`.
    pub envelope: PowerMap,
}

impl DynamicWorkload {
    /// Generates the workload for a `width`×`height` die.
    ///
    /// # Panics
    ///
    /// Panics when `spec.windows` is 0 or exceeds [`MAX_WINDOWS`].
    #[must_use]
    pub fn generate(width: usize, height: usize, spec: &VectorSpec) -> Self {
        assert!(
            (1..=MAX_WINDOWS).contains(&spec.windows),
            "window count {} out of 1..={MAX_WINDOWS}",
            spec.windows
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let (wf, hf) = (width as f64, height as f64);
        let instances: Vec<Instance> = (0..spec.instances.max(1))
            .map(|_| {
                let period = rng.gen_range(2..=spec.windows.max(2));
                Instance {
                    cx: rng.gen_range(0.05..0.95) * wf,
                    cy: rng.gen_range(0.05..0.95) * hf,
                    sx: rng.gen_range(0.02..0.10) * wf,
                    sy: rng.gen_range(0.02..0.10) * hf,
                    current: rng.gen_range(0.5..3.0),
                    phase: rng.gen_range(0..period),
                    duty: rng.gen_range(1..=period),
                    period,
                }
            })
            .collect();
        // Leakage background: constant across windows, jittered in space.
        let leakage: Vec<f64> = (0..width * height)
            .map(|_| 0.05 * (0.5 + rng.gen::<f64>()))
            .collect();
        // Per-(instance, window) toggle jitter, drawn in a fixed order so
        // the workload stays deterministic regardless of assembly order.
        let jitters: Vec<f64> = (0..instances.len() * spec.windows)
            .map(|_| rng.gen_range(0.75..1.25))
            .collect();
        let mut windows: Vec<PowerMap> = (0..spec.windows)
            .map(|w| {
                let mut data = leakage.clone();
                for (i, inst) in instances.iter().enumerate() {
                    let act = inst.activity(w, jitters[i * spec.windows + w]);
                    for y in 0..height {
                        for x in 0..width {
                            let dx = (x as f64 + 0.5 - inst.cx) / inst.sx;
                            let dy = (y as f64 + 0.5 - inst.cy) / inst.sy;
                            data[y * width + x] +=
                                act * inst.current * (-0.5 * (dx * dx + dy * dy)).exp();
                        }
                    }
                }
                PowerMap::from_vec(width, height, data)
            })
            .collect();
        // Normalize so the mean window total matches the requested current;
        // busy windows land above it, quiet ones below.
        let mean: f64 = windows.iter().map(PowerMap::total).sum::<f64>() / spec.windows as f64;
        if mean > 0.0 {
            let k = spec.total_current / mean;
            for m in &mut windows {
                m.scale(k);
            }
        }
        let envelope = PowerMap::envelope(&windows);
        DynamicWorkload { windows, envelope }
    }
}

/// A benchmark case paired with its per-window power decomposition: the
/// netlist is built from the *envelope* map so static models can serve the
/// same design, while dynamic models consume the windows.
#[derive(Debug, Clone)]
pub struct DynamicCase {
    /// Case whose `power` is the envelope and whose netlist matches it.
    pub case: Case,
    /// Per-window toggle-weighted power maps (the model input).
    pub windows: Vec<PowerMap>,
}

impl DynamicCase {
    /// Generates a dynamic case: windows from [`VectorSpec::for_case`], a
    /// netlist built against the envelope with the spec's PDN geometry.
    ///
    /// # Panics
    ///
    /// Panics when `windows` is 0 or exceeds [`MAX_WINDOWS`].
    #[must_use]
    pub fn generate(spec: &CaseSpec, windows: usize) -> Self {
        let vspec = VectorSpec::for_case(spec, windows);
        let work = DynamicWorkload::generate(spec.width, spec.height, &vspec);
        let tech = PdnTech::standard();
        let netlist = build_netlist(&tech, &work.envelope, &spec.build_options());
        DynamicCase {
            case: Case {
                spec: spec.clone(),
                tech,
                power: work.envelope,
                netlist,
            },
            windows: work.windows,
        }
    }

    /// Rebuilds the PDN against window `w`'s power map — the netlist whose
    /// golden solve gives that window's IR drop.
    ///
    /// # Panics
    ///
    /// Panics when `w` is out of range.
    #[must_use]
    pub fn window_netlist(&self, w: usize) -> Netlist {
        build_netlist(
            &self.case.tech,
            &self.windows[w],
            &self.case.spec.build_options(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contest::CaseKind;

    fn spec() -> CaseSpec {
        CaseSpec::new("dyn", 24, 24, 11, CaseKind::Fake)
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let v = VectorSpec::for_case(&spec(), 4);
        let a = DynamicWorkload::generate(24, 24, &v);
        let b = DynamicWorkload::generate(24, 24, &v);
        assert_eq!(a, b);
        let mut v2 = v.clone();
        v2.seed ^= 1;
        let c = DynamicWorkload::generate(24, 24, &v2);
        assert_ne!(a, c);
    }

    #[test]
    fn windows_differ_from_each_other() {
        let v = VectorSpec::for_case(&spec(), 4);
        let w = DynamicWorkload::generate(24, 24, &v);
        assert_eq!(w.windows.len(), 4);
        assert_ne!(w.windows[0], w.windows[1]);
    }

    #[test]
    fn envelope_dominates_every_window() {
        let v = VectorSpec::for_case(&spec(), 3);
        let w = DynamicWorkload::generate(24, 24, &v);
        for m in &w.windows {
            for (e, x) in w.envelope.data().iter().zip(m.data()) {
                assert!(e >= x);
            }
        }
        // And the envelope is attained: it exceeds each single window's
        // total (different windows dominate different pixels).
        assert!(w.envelope.total() > w.windows.iter().map(PowerMap::total).fold(0.0, f64::max));
    }

    #[test]
    fn mean_window_current_is_normalized() {
        let v = VectorSpec::for_case(&spec(), 5);
        let w = DynamicWorkload::generate(24, 24, &v);
        let mean: f64 = w.windows.iter().map(PowerMap::total).sum::<f64>() / 5.0;
        assert!((mean - v.total_current).abs() < 1e-9 * v.total_current.max(1.0));
    }

    #[test]
    fn dynamic_case_solves_per_window() {
        let d = DynamicCase::generate(&spec(), 2);
        let net = d.window_netlist(0);
        let ir = lmmir_solver::solve_ir_drop(&net, lmmir_solver::CgConfig::default()).unwrap();
        assert!(ir.worst_drop() > 0.0);
        // Envelope netlist solves too (it is the Case netlist).
        assert!(d.case.solve().unwrap().worst_drop() >= ir.worst_drop() * 0.1);
    }

    #[test]
    #[should_panic(expected = "window count")]
    fn zero_windows_rejected() {
        let _ = VectorSpec::for_case(&spec(), 0);
    }
}
