//! Contest-style dataset export: writes a generated case to disk in the
//! layout the ICCAD-2023 contest distributed (SPICE netlist + CSV feature
//! maps + CSV golden IR map), so the generated benchmarks can feed other
//! tools and the original PyTorch implementations.

use crate::contest::{Case, CaseSpec};
use lmmir_solver::{solve_ir_drop, CgConfig, SolveIrDropError};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Error from dataset export.
#[derive(Debug)]
pub enum ExportError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Golden solve failed for the case.
    Solve(SolveIrDropError),
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "export io error: {e}"),
            ExportError::Solve(e) => write!(f, "export solve error: {e}"),
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

impl From<SolveIrDropError> for ExportError {
    fn from(e: SolveIrDropError) -> Self {
        ExportError::Solve(e)
    }
}

fn write_csv_f64(
    path: &Path,
    width: usize,
    height: usize,
    at: impl Fn(usize, usize) -> f64,
) -> Result<(), ExportError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for y in 0..height {
        let row: Vec<String> = (0..width).map(|x| format!("{}", at(x, y))).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes one case to `dir/<case-id>/` in the contest layout:
///
/// * `netlist.sp` — the SPICE PDN,
/// * `current_map.csv` — per-µm² drawn current,
/// * `ir_drop_map.csv` — golden per-µm² IR drop (from a fresh solve),
/// * `spec.txt` — the generating parameters for provenance.
///
/// Returns the case directory.
///
/// # Errors
///
/// Returns [`ExportError`] on filesystem failure or an unsolvable case.
pub fn export_case(case: &Case, dir: impl AsRef<Path>) -> Result<std::path::PathBuf, ExportError> {
    let case_dir = dir.as_ref().join(&case.spec.id);
    std::fs::create_dir_all(&case_dir)?;

    case.netlist.write_file(case_dir.join("netlist.sp"))?;

    let (w, h) = (case.power.width(), case.power.height());
    write_csv_f64(&case_dir.join("current_map.csv"), w, h, |x, y| {
        case.power.at(x, y)
    })?;

    // Golden IR map: nearest-node drop per pixel on the lowest layer.
    let ir = solve_ir_drop(&case.netlist, CgConfig::default())?;
    let dbu = case.tech.dbu_per_um;
    // Collect lowest-layer node drops into a per-pixel max grid.
    let mut grid = vec![0.0f64; w * h];
    let low = case
        .netlist
        .iter()
        .flat_map(|e| [e.a.name(), e.b.name()])
        .flatten()
        .map(|n| n.layer)
        .min()
        .unwrap_or(1);
    for (node, drop) in ir.iter_drops() {
        if node.layer != low {
            continue;
        }
        let x = (node.x as f64 / dbu as f64).floor() as isize;
        let y = (node.y as f64 / dbu as f64).floor() as isize;
        if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
            let ix = y as usize * w + x as usize;
            grid[ix] = grid[ix].max(drop);
        }
    }
    write_csv_f64(&case_dir.join("ir_drop_map.csv"), w, h, |x, y| {
        grid[y * w + x]
    })?;

    let mut spec_file = std::fs::File::create(case_dir.join("spec.txt"))?;
    writeln!(spec_file, "{:#?}", case.spec)?;
    Ok(case_dir)
}

/// Exports a whole suite of specs under `dir`, returning the case paths.
///
/// # Errors
///
/// Returns the first failing export.
pub fn export_suite(
    specs: &[CaseSpec],
    dir: impl AsRef<Path>,
) -> Result<Vec<std::path::PathBuf>, ExportError> {
    specs
        .iter()
        .map(|s| export_case(&s.generate(), dir.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contest::CaseKind;
    use lmmir_spice::Netlist;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("lmmir_export_test").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn export_writes_all_artifacts() {
        let case = CaseSpec::new("exp1", 12, 12, 3, CaseKind::Fake).generate();
        let dir = tmp_dir("a");
        let case_dir = export_case(&case, &dir).unwrap();
        for f in [
            "netlist.sp",
            "current_map.csv",
            "ir_drop_map.csv",
            "spec.txt",
        ] {
            assert!(case_dir.join(f).exists(), "missing {f}");
        }
        // The exported netlist parses back identically.
        let back = Netlist::parse_file(case_dir.join("netlist.sp")).unwrap();
        assert_eq!(back, case.netlist);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exported_current_map_round_trips() {
        let case = CaseSpec::new("exp2", 10, 10, 5, CaseKind::Fake).generate();
        let dir = tmp_dir("b");
        let case_dir = export_case(&case, &dir).unwrap();
        let text = std::fs::read_to_string(case_dir.join("current_map.csv")).unwrap();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 10);
        let first: f64 = rows[0].split(',').next().unwrap().parse().unwrap();
        assert!((first - case.power.at(0, 0)).abs() < 1e-15);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_suite_creates_one_dir_per_case() {
        let specs = vec![
            CaseSpec::new("s0", 8, 8, 1, CaseKind::Fake),
            CaseSpec::new("s1", 8, 8, 2, CaseKind::Fake),
        ];
        let dir = tmp_dir("c");
        let paths = export_suite(&specs, &dir).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with("s0"));
        assert!(paths[1].ends_with("s1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
