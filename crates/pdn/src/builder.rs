//! PDN netlist construction from a technology, chip extent and power map.
//!
//! The generated network mirrors the structure of the contest PDNs:
//!
//! * each metal layer contributes parallel stripes (rails) at its pitch;
//! * adjacent layers are connected by via resistors at stripe crossings;
//! * every power-map pixel becomes a current source tapped onto the nearest
//!   `m1` rail;
//! * C4 pads (ideal voltage sources) sit on a coarse grid on the top layer,
//!   optionally with a keep-out region to create pad-starved areas with
//!   large effective distance (the hard cases for IR prediction).

use crate::power::PowerMap;
use crate::tech::{LayerDir, PdnTech};
use lmmir_spice::{Element, ElementKind, Netlist, NodeName, NodeRef};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Options modulating a single generated benchmark.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BuildOptions {
    /// Pad pitch override (µm); defaults to the technology pitch.
    pub pad_pitch_um: Option<f64>,
    /// Pad keep-out rectangle as chip fractions `(x0, y0, x1, y1)`; pads
    /// inside the rectangle are removed (at least one pad always remains).
    pub pad_keepout: Option<(f64, f64, f64, f64)>,
    /// Weak-via region: vias inside the fractional rectangle get their
    /// resistance multiplied by the factor. Models a degraded via array —
    /// a defect that is crisply visible in the netlist (per-via values and
    /// layers) but only faintly in aggregated image channels, making it a
    /// probe for netlist-aware predictors.
    pub weak_via_region: Option<((f64, f64, f64, f64), f64)>,
    /// Additional C4 pads at explicit µm positions (snapped to the nearest
    /// top-layer node). Used by the what-if PDN-fixing loop.
    pub extra_pads: Vec<(f64, f64)>,
}

/// Key of a physical PDN node.
type NodeKey = (u8, i64, i64); // (layer, x_dbu, y_dbu)

fn node(net: u32, key: NodeKey) -> NodeRef {
    NodeRef::Node(NodeName::new(net, key.0, key.1, key.2))
}

/// Snaps `v` to the nearest element of a sorted slice.
fn snap(sorted: &[i64], v: i64) -> i64 {
    match sorted.binary_search(&v) {
        Ok(i) => sorted[i],
        Err(0) => sorted[0],
        Err(i) if i == sorted.len() => sorted[sorted.len() - 1],
        Err(i) => {
            if v - sorted[i - 1] <= sorted[i] - v {
                sorted[i - 1]
            } else {
                sorted[i]
            }
        }
    }
}

/// Builds a PDN netlist.
///
/// The power map's pixel grid is interpreted at 1 µm/pixel; its extent
/// defines the chip extent.
///
/// # Panics
///
/// Panics when the technology fails validation — generator configurations
/// are programmer-controlled, so this is a contract violation rather than a
/// runtime condition.
#[must_use]
pub fn build_netlist(tech: &PdnTech, power: &PowerMap, opts: &BuildOptions) -> Netlist {
    tech.validate().expect("valid PDN technology");
    let width_um = power.width() as f64;
    let height_um = power.height() as f64;
    let net = 1u32;

    // Stripe cross-positions per layer, in DBU.
    let stripes_dbu: Vec<Vec<i64>> = tech
        .layers
        .iter()
        .map(|l| {
            let extent = match l.dir {
                LayerDir::Horizontal => height_um,
                LayerDir::Vertical => width_um,
            };
            tech.stripe_positions(l, extent)
                .into_iter()
                .map(|p| tech.to_dbu(p))
                .collect()
        })
        .collect();

    // Per-layer, per-stripe ordered node positions along the stripe axis.
    // stripe key = cross coordinate (DBU); positions = along coordinate.
    let mut rails: Vec<BTreeMap<i64, BTreeSet<i64>>> = vec![BTreeMap::new(); tech.layers.len()];

    // 1. Via crossings between adjacent layers.
    let mut vias: Vec<(NodeKey, NodeKey, f64)> = Vec::new();
    for li in 0..tech.layers.len() - 1 {
        let (a, b) = (&tech.layers[li], &tech.layers[li + 1]);
        let (h_idx, v_idx) = match a.dir {
            LayerDir::Horizontal => (li, li + 1),
            LayerDir::Vertical => (li + 1, li),
        };
        let ys = stripes_dbu[h_idx].clone();
        let xs = stripes_dbu[v_idx].clone();
        for &y in &ys {
            for &x in &xs {
                // Register the crossing node on both layers.
                for (idx, layer) in [(li, a), (li + 1, b)] {
                    let (stripe, along) = match layer.dir {
                        LayerDir::Horizontal => (y, x),
                        LayerDir::Vertical => (x, y),
                    };
                    rails[idx].entry(stripe).or_default().insert(along);
                }
                let mut r = tech.via_res[li];
                if let Some((rect, factor)) = opts.weak_via_region {
                    let fx = tech.to_um(x) / width_um;
                    let fy = tech.to_um(y) / height_um;
                    if fx >= rect.0 && fx <= rect.2 && fy >= rect.1 && fy <= rect.3 {
                        r *= factor;
                    }
                }
                vias.push(((a.id, x, y), (b.id, x, y), r));
            }
        }
    }

    // 2. Current-source taps on m1.
    let m1 = &tech.layers[0];
    debug_assert_eq!(
        m1.dir,
        LayerDir::Horizontal,
        "standard stack has horizontal m1"
    );
    let m1_ys = &stripes_dbu[0];
    let mut loads: HashMap<NodeKey, f64> = HashMap::new();
    for py in 0..power.height() {
        for px in 0..power.width() {
            let current = power.at(px, py);
            if current <= 0.0 {
                continue;
            }
            let x = tech.to_dbu(px as f64 + 0.5);
            let y = snap(m1_ys, tech.to_dbu(py as f64 + 0.5));
            rails[0].entry(y).or_default().insert(x);
            *loads.entry((m1.id, x, y)).or_insert(0.0) += current;
        }
    }

    // 3. Pads on the top layer, snapped to existing crossing nodes.
    let top_idx = tech.layers.len() - 1;
    let top = &tech.layers[top_idx];
    let pad_pitch = opts.pad_pitch_um.unwrap_or(tech.pad_pitch_um);
    let mut pad_nodes: BTreeSet<NodeKey> = BTreeSet::new();
    {
        // All existing top-layer node coordinates.
        let stripe_keys: Vec<i64> = rails[top_idx].keys().copied().collect();
        let snap_pad = |px: f64, py: f64, rails_top: &BTreeMap<i64, BTreeSet<i64>>| -> NodeKey {
            let (want_stripe, want_along) = match top.dir {
                LayerDir::Horizontal => (tech.to_dbu(py), tech.to_dbu(px)),
                LayerDir::Vertical => (tech.to_dbu(px), tech.to_dbu(py)),
            };
            let stripe = snap(&stripe_keys, want_stripe);
            let alongs: Vec<i64> = rails_top[&stripe].iter().copied().collect();
            let along = snap(&alongs, want_along);
            match top.dir {
                LayerDir::Horizontal => (top.id, along, stripe),
                LayerDir::Vertical => (top.id, stripe, along),
            }
        };
        let mut px = pad_pitch * 0.5;
        while px < width_um || pad_nodes.is_empty() {
            let mut py = pad_pitch * 0.5;
            while py < height_um || pad_nodes.is_empty() {
                if let Some(kq) = opts.pad_keepout {
                    let (fx, fy) = (px / width_um, py / height_um);
                    if fx >= kq.0 && fx <= kq.2 && fy >= kq.1 && fy <= kq.3 {
                        py += pad_pitch;
                        if py >= height_um && !pad_nodes.is_empty() {
                            break;
                        }
                        continue;
                    }
                }
                pad_nodes.insert(snap_pad(px, py, &rails[top_idx]));
                py += pad_pitch;
            }
            px += pad_pitch;
            if px >= width_um && !pad_nodes.is_empty() {
                break;
            }
        }
        // Explicit what-if pads (no keep-out filtering: the designer asked).
        for &(ex, ey) in &opts.extra_pads {
            pad_nodes.insert(snap_pad(ex, ey, &rails[top_idx]));
        }
    }

    // 4. Emit elements: wire resistors, vias, loads, pads.
    let mut netlist = Netlist::new();
    let mut rid = 0usize;
    for (li, layer) in tech.layers.iter().enumerate() {
        for (&stripe, alongs) in &rails[li] {
            let mut prev: Option<i64> = None;
            for &along in alongs {
                if let Some(p) = prev {
                    let dist_um = tech.to_um(along - p);
                    if dist_um > 0.0 {
                        let r = dist_um * layer.res_per_um;
                        let (a, b) = match layer.dir {
                            LayerDir::Horizontal => {
                                ((layer.id, p, stripe), (layer.id, along, stripe))
                            }
                            LayerDir::Vertical => {
                                ((layer.id, stripe, p), (layer.id, stripe, along))
                            }
                        };
                        netlist.push(Element::new(
                            format!("R{rid}"),
                            ElementKind::Resistor,
                            node(net, a),
                            node(net, b),
                            r,
                        ));
                        rid += 1;
                    }
                }
                prev = Some(along);
            }
        }
    }
    for (a, b, r) in vias {
        netlist.push(Element::new(
            format!("R{rid}"),
            ElementKind::Resistor,
            node(net, a),
            node(net, b),
            r,
        ));
        rid += 1;
    }
    let mut load_keys: Vec<NodeKey> = loads.keys().copied().collect();
    load_keys.sort_unstable();
    for (i, key) in load_keys.iter().enumerate() {
        netlist.push(Element::new(
            format!("I{i}"),
            ElementKind::CurrentSource,
            node(net, *key),
            NodeRef::Ground,
            loads[key],
        ));
    }
    for (i, key) in pad_nodes.iter().enumerate() {
        netlist.push(Element::new(
            format!("V{i}"),
            ElementKind::VoltageSource,
            node(net, *key),
            NodeRef::Ground,
            tech.vdd,
        ));
    }
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_solver::{solve_ir_drop, CgConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_power(seed: u64) -> PowerMap {
        let mut rng = StdRng::seed_from_u64(seed);
        PowerMap::synth(24, 24, 2, 0.5, &mut rng)
    }

    #[test]
    fn generated_netlist_has_all_element_kinds() {
        let nl = build_netlist(
            &PdnTech::standard(),
            &small_power(0),
            &BuildOptions::default(),
        );
        let s = nl.stats();
        assert!(s.resistors > 100, "resistors {}", s.resistors);
        assert!(s.vias > 10, "vias {}", s.vias);
        assert!(s.current_sources > 100);
        assert!(s.voltage_sources >= 1);
        assert_eq!(s.layers, 4);
    }

    #[test]
    fn generated_netlist_is_solvable() {
        let nl = build_netlist(
            &PdnTech::standard(),
            &small_power(1),
            &BuildOptions::default(),
        );
        let ir = solve_ir_drop(&nl, CgConfig::default()).unwrap();
        let worst = ir.worst_drop();
        assert!(worst > 0.0, "some drop expected");
        assert!(
            worst < 0.5 * 1.1,
            "drop {worst} should stay below half the supply"
        );
    }

    #[test]
    fn snap_picks_nearest() {
        let s = [0i64, 10, 20];
        assert_eq!(snap(&s, -5), 0);
        assert_eq!(snap(&s, 4), 0);
        assert_eq!(snap(&s, 6), 10);
        assert_eq!(snap(&s, 10), 10);
        assert_eq!(snap(&s, 99), 20);
    }

    fn wide_power(seed: u64) -> PowerMap {
        let mut rng = StdRng::seed_from_u64(seed);
        PowerMap::synth(48, 48, 3, 1.5, &mut rng)
    }

    #[test]
    fn pad_keepout_removes_pads_in_region() {
        let tech = PdnTech::standard();
        let with = build_netlist(&tech, &wide_power(2), &BuildOptions::default());
        let without = build_netlist(
            &tech,
            &wide_power(2),
            &BuildOptions {
                pad_keepout: Some((0.0, 0.0, 0.6, 0.6)),
                ..Default::default()
            },
        );
        assert!(
            without.stats().voltage_sources < with.stats().voltage_sources,
            "keepout should remove pads"
        );
        assert!(without.stats().voltage_sources >= 1);
    }

    #[test]
    fn keepout_increases_worst_drop() {
        let tech = PdnTech::standard();
        let base = build_netlist(&tech, &wide_power(3), &BuildOptions::default());
        let starved = build_netlist(
            &tech,
            &wide_power(3),
            &BuildOptions {
                pad_keepout: Some((0.0, 0.0, 0.7, 0.7)),
                ..Default::default()
            },
        );
        let d0 = solve_ir_drop(&base, CgConfig::default())
            .unwrap()
            .worst_drop();
        let d1 = solve_ir_drop(&starved, CgConfig::default())
            .unwrap()
            .worst_drop();
        assert!(d1 > d0, "pad-starved region should sag more: {d1} vs {d0}");
    }

    #[test]
    fn denser_pads_reduce_drop() {
        let tech = PdnTech::standard();
        let sparse = build_netlist(
            &tech,
            &small_power(4),
            &BuildOptions {
                pad_pitch_um: Some(24.0),
                ..Default::default()
            },
        );
        let dense = build_netlist(
            &tech,
            &small_power(4),
            &BuildOptions {
                pad_pitch_um: Some(8.0),
                ..Default::default()
            },
        );
        let ds = solve_ir_drop(&sparse, CgConfig::default())
            .unwrap()
            .worst_drop();
        let dd = solve_ir_drop(&dense, CgConfig::default())
            .unwrap()
            .worst_drop();
        assert!(dd < ds, "denser pads must reduce drop: {dd} vs {ds}");
    }

    #[test]
    fn total_load_current_preserved() {
        let p = small_power(5);
        let nl = build_netlist(&PdnTech::standard(), &p, &BuildOptions::default());
        assert!((nl.total_current() - p.total()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_output() {
        let a = build_netlist(
            &PdnTech::standard(),
            &small_power(6),
            &BuildOptions::default(),
        );
        let b = build_netlist(
            &PdnTech::standard(),
            &small_power(6),
            &BuildOptions::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_chip_still_builds() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = PowerMap::synth(4, 4, 1, 0.01, &mut rng);
        let nl = build_netlist(&PdnTech::standard(), &p, &BuildOptions::default());
        assert!(nl.stats().voltage_sources >= 1);
        assert!(solve_ir_drop(&nl, CgConfig::default()).is_ok());
    }
}
