//! Property tests: every generated PDN must satisfy structural and
//! electrical invariants, for arbitrary generator parameters.

use lmmir_pdn::{build_netlist, BuildOptions, CaseKind, CaseSpec, PdnTech, PowerMap};
use lmmir_solver::{solve_ir_drop, stamp, CgConfig};
use lmmir_spice::ElementKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_netlists_are_well_formed(
        side in 8usize..28,
        seed in 0u64..10_000,
        hotspots in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let power = PowerMap::synth(side, side, hotspots, 1e-4 * (side * side) as f64, &mut rng);
        let nl = build_netlist(&PdnTech::standard(), &power, &BuildOptions::default());
        let stats = nl.stats();
        // At least one pad, loads present, resistive fabric present.
        prop_assert!(stats.voltage_sources >= 1);
        prop_assert!(stats.current_sources > 0);
        prop_assert!(stats.resistors > stats.vias);
        // All resistances positive, all load currents non-negative.
        for e in nl.iter() {
            match e.kind {
                ElementKind::Resistor => prop_assert!(e.value > 0.0),
                ElementKind::CurrentSource => prop_assert!(e.value >= 0.0),
                ElementKind::VoltageSource => prop_assert!((e.value - 1.1).abs() < 1e-9),
            }
        }
        // The reduced system stamps SPD-ready: positive diagonal everywhere.
        let sys = stamp(&nl).unwrap();
        for (i, d) in sys.matrix.diag().iter().enumerate() {
            prop_assert!(*d > 0.0, "zero diagonal at unknown {i}");
        }
        prop_assert!(sys.matrix.is_symmetric(1e-9));
    }

    #[test]
    fn voltages_bounded_by_supply(side in 8usize..24, seed in 0u64..1_000) {
        let spec = CaseSpec::new("prop", side, side, seed, CaseKind::Fake);
        let case = spec.generate();
        let ir = solve_ir_drop(&case.netlist, CgConfig::default()).unwrap();
        // Maximum principle: all node voltages lie in [0, vdd]; drops in
        // [0, vdd].
        for (_, drop) in ir.iter_drops() {
            prop_assert!(drop >= -1e-6, "negative drop {drop}");
            prop_assert!(drop <= 1.1 + 1e-6, "drop beyond supply {drop}");
        }
    }

    #[test]
    fn case_specs_serialize_stably(seed in 0u64..500) {
        // Same seed, same outcome; different seed, (almost surely) different
        // netlist.
        let a = CaseSpec::new("s", 16, 16, seed, CaseKind::Real).generate();
        let b = CaseSpec::new("s", 16, 16, seed, CaseKind::Real).generate();
        prop_assert_eq!(&a.netlist, &b.netlist);
        let c = CaseSpec::new("s", 16, 16, seed + 1, CaseKind::Real).generate();
        prop_assert_ne!(&a.power, &c.power);
    }
}
