//! Learning-capability tests: small networks must be able to overfit tiny
//! datasets — the classic end-to-end sanity check for a training stack.

use lmmir_nn::{Activation, BatchNorm2d, Conv2d, Linear, Module, Sequential};
use lmmir_tensor::conv::ConvSpec;
use lmmir_tensor::{Adam, Optimizer, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn mlp_overfits_xor() {
    let mut rng = StdRng::seed_from_u64(0);
    let mlp = Sequential::new()
        .push(Linear::new(2, 8, true, &mut rng))
        .push(Activation::Tanh)
        .push(Linear::new(8, 1, true, &mut rng));
    let x = Var::constant(
        Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap(),
    );
    let y = Var::constant(Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4, 1]).unwrap());
    let mut opt = Adam::new(mlp.parameters(), 0.05);
    let mut final_loss = f32::INFINITY;
    for _ in 0..400 {
        opt.zero_grad();
        let loss = mlp.forward(&x).unwrap().mse_loss(&y).unwrap();
        final_loss = loss.value().item();
        loss.backward();
        opt.step();
    }
    assert!(final_loss < 1e-2, "xor not learned: loss {final_loss}");
    let pred = mlp.forward(&x).unwrap().to_tensor();
    assert!(pred.data()[0] < 0.5 && pred.data()[1] > 0.5);
    assert!(pred.data()[2] > 0.5 && pred.data()[3] < 0.5);
}

#[test]
fn conv_net_learns_edge_detection() {
    // Target: horizontal gradient magnitude of the input — exactly
    // representable by a 3x3 kernel, so the conv must drive loss to ~0.
    let mut rng = StdRng::seed_from_u64(1);
    let conv = Conv2d::new(1, 1, 3, ConvSpec::new(1, 1), true, &mut rng);
    let mut images = Vec::new();
    let mut targets = Vec::new();
    for seed in 0..4u64 {
        let mut r2 = StdRng::seed_from_u64(seed);
        let img: Vec<f32> = (0..64).map(|_| r2.gen_range(-1.0..1.0)).collect();
        let t = Tensor::from_vec(img.clone(), &[1, 1, 8, 8]).unwrap();
        // target[y][x] = img[y][x+1] - img[y][x-1] (zero padded)
        let mut tgt = vec![0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                let right = if x + 1 < 8 { img[y * 8 + x + 1] } else { 0.0 };
                let left = if x > 0 { img[y * 8 + x - 1] } else { 0.0 };
                tgt[y * 8 + x] = right - left;
            }
        }
        images.push(Var::constant(t));
        targets.push(Var::constant(Tensor::from_vec(tgt, &[1, 1, 8, 8]).unwrap()));
    }
    let mut opt = Adam::new(conv.parameters(), 0.03);
    let mut final_loss = f32::INFINITY;
    for _ in 0..300 {
        for (x, y) in images.iter().zip(&targets) {
            opt.zero_grad();
            let loss = conv.forward(x).unwrap().mse_loss(y).unwrap();
            final_loss = loss.value().item();
            loss.backward();
            opt.step();
        }
    }
    assert!(final_loss < 1e-3, "edge filter not learned: {final_loss}");
}

#[test]
fn batchnorm_network_trains_stably() {
    // A conv + BN + conv regression stack must fit a constant-field mapping
    // without diverging (exercises BN backward through composed primitives).
    let mut rng = StdRng::seed_from_u64(2);
    let c1 = Conv2d::new(2, 4, 3, ConvSpec::new(1, 1), true, &mut rng);
    let bn = BatchNorm2d::new(4);
    let c2 = Conv2d::new(4, 1, 1, ConvSpec::new(1, 0), true, &mut rng);
    let x = Var::constant(lmmir_tensor::init::uniform(&[2, 2, 6, 6], 1.0, &mut rng));
    let y = Var::constant(Tensor::full(&[2, 1, 6, 6], 0.25));
    let params: Vec<Var> = c1
        .parameters()
        .into_iter()
        .chain(bn.parameters())
        .chain(c2.parameters())
        .collect();
    let mut opt = Adam::new(params, 0.02);
    let mut last = f32::INFINITY;
    for _ in 0..200 {
        opt.zero_grad();
        let h = bn.forward(&c1.forward(&x).unwrap()).unwrap().relu();
        let loss = c2.forward(&h).unwrap().mse_loss(&y).unwrap();
        last = loss.value().item();
        assert!(last.is_finite(), "training diverged");
        loss.backward();
        opt.step();
    }
    assert!(last < 1e-3, "constant field not fitted: {last}");
}

#[test]
fn attention_learns_token_selection() {
    // Cross-attention from a single query over 4 tokens must learn to copy
    // the value of the "marked" token (marker in the key features).
    use lmmir_nn::MultiHeadAttention;
    let mut rng = StdRng::seed_from_u64(3);
    let attn = MultiHeadAttention::new(4, 1, &mut rng);
    let mut opt = Adam::new(attn.parameters(), 0.02);
    let mut last = f32::INFINITY;
    for step in 0..600 {
        let marked = step % 4;
        // tokens: feature 0 = marker, feature 1 = payload
        let mut kv = vec![0.0f32; 4 * 4];
        for t in 0..4 {
            kv[t * 4] = if t == marked { 1.0 } else { 0.0 };
            kv[t * 4 + 1] = (t as f32 + 1.0) * 0.2;
        }
        let payload = (marked as f32 + 1.0) * 0.2;
        let kvv = Var::constant(Tensor::from_vec(kv, &[1, 4, 4]).unwrap());
        let q = Var::constant(Tensor::ones(&[1, 1, 4]));
        let target =
            Var::constant(Tensor::from_vec(vec![payload, 0.0, 0.0, 0.0], &[1, 1, 4]).unwrap());
        opt.zero_grad();
        let out = attn.forward_qkv(&q, &kvv, &kvv).unwrap();
        let loss = out.mse_loss(&target).unwrap();
        last = loss.value().item();
        loss.backward();
        opt.step();
    }
    assert!(last < 0.02, "attention selection not learned: {last}");
}
