//! Pooling and upsampling wrapper modules.

use crate::module::Module;
use lmmir_tensor::{Result, Var};

/// Max-pooling over square windows.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling module; `kernel == stride` gives the classic
    /// non-overlapping "pool by 2" used in the LMM-IR encoder.
    #[must_use]
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d { kernel, stride }
    }

    /// Non-overlapping pooling by factor `k`.
    #[must_use]
    pub fn by(k: usize) -> Self {
        MaxPool2d::new(k, k)
    }
}

impl Module for MaxPool2d {
    fn forward(&self, x: &Var) -> Result<Var> {
        x.max_pool2d(self.kernel, self.stride)
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Nearest-neighbour spatial upsampling by an integer factor.
#[derive(Debug, Clone, Copy)]
pub struct UpsampleNearest2d {
    factor: usize,
}

impl UpsampleNearest2d {
    /// Creates an upsampler.
    #[must_use]
    pub fn new(factor: usize) -> Self {
        UpsampleNearest2d { factor }
    }
}

impl Module for UpsampleNearest2d {
    fn forward(&self, x: &Var) -> Result<Var> {
        x.upsample_nearest2d(self.factor)
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_tensor::Tensor;

    #[test]
    fn pool_then_upsample_restores_shape() {
        let x = Var::constant(Tensor::ones(&[1, 2, 8, 8]));
        let pooled = MaxPool2d::by(2).forward(&x).unwrap();
        assert_eq!(pooled.dims(), vec![1, 2, 4, 4]);
        let up = UpsampleNearest2d::new(2).forward(&pooled).unwrap();
        assert_eq!(up.dims(), vec![1, 2, 8, 8]);
    }

    #[test]
    fn pool_window_too_large_errors() {
        let x = Var::constant(Tensor::ones(&[1, 1, 2, 2]));
        assert!(MaxPool2d::by(3).forward(&x).is_err());
    }
}
