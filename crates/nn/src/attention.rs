//! Attention blocks: multi-head self/cross attention and the attention gate.
//!
//! LMM-IR uses three flavours of attention (paper §II-C / §III):
//! * **self-attention** inside the Large-scale Netlist Transformer,
//! * **cross-attention** to fuse circuit-map tokens with netlist tokens,
//! * **attention gates** (Attention U-Net, Oktay et al. 2018) on the skip
//!   connections of the decoder to suppress irrelevant regions.

use crate::conv::Conv2d;
use crate::linear::Linear;
use crate::module::Module;
use lmmir_tensor::conv::ConvSpec;
use lmmir_tensor::{Result, TensorError, Var};
use rand::Rng;

/// Multi-head scaled dot-product attention with learned Q/K/V/O projections.
///
/// `forward_qkv(q, k, v)` computes standard attention where the query stream
/// may differ from the key/value stream, covering both the self-attention
/// (`q = k = v`) and cross-attention (`q` = circuit tokens, `k = v` = netlist
/// tokens) configurations of the paper.
#[derive(Debug)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block.
    ///
    /// # Panics
    ///
    /// Panics when `d_model` is not divisible by `heads`.
    #[must_use]
    pub fn new(d_model: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert!(
            heads > 0 && d_model % heads == 0,
            "d_model {d_model} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            wq: Linear::new(d_model, d_model, true, rng),
            wk: Linear::new(d_model, d_model, true, rng),
            wv: Linear::new(d_model, d_model, true, rng),
            wo: Linear::new(d_model, d_model, true, rng),
            heads,
            d_model,
        }
    }

    /// Model (embedding) dimension.
    #[must_use]
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of attention heads.
    #[must_use]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Splits `[B, N, D]` into `[B*H, N, D/H]`.
    fn split_heads(&self, x: &Var) -> Result<Var> {
        let dims = x.dims();
        let (b, n) = (dims[0], dims[1]);
        let dh = self.d_model / self.heads;
        x.reshape(&[b, n, self.heads, dh])?
            .permute(&[0, 2, 1, 3])?
            .reshape(&[b * self.heads, n, dh])
    }

    /// Merges `[B*H, N, D/H]` back into `[B, N, D]`.
    fn merge_heads(&self, x: &Var, b: usize, n: usize) -> Result<Var> {
        let dh = self.d_model / self.heads;
        x.reshape(&[b, self.heads, n, dh])?
            .permute(&[0, 2, 1, 3])?
            .reshape(&[b, n, self.d_model])
    }

    /// Attention with distinct query and key/value streams.
    ///
    /// Shapes: `q [B, Nq, D]`, `k`/`v` `[B, Nk, D]` → `[B, Nq, D]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for non-rank-3 inputs or a
    /// feature dimension that differs from `d_model`.
    pub fn forward_qkv(&self, q: &Var, k: &Var, v: &Var) -> Result<Var> {
        for (name, t) in [("q", q), ("k", k), ("v", v)] {
            let d = t.dims();
            if d.len() != 3 || d[2] != self.d_model {
                return Err(TensorError::InvalidShape {
                    dims: d,
                    reason: format!("attention {name} must be [B, N, {}]", self.d_model),
                });
            }
        }
        let (b, nq) = (q.dims()[0], q.dims()[1]);
        let qh = self.split_heads(&self.wq.forward(q)?)?;
        let kh = self.split_heads(&self.wk.forward(k)?)?;
        let vh = self.split_heads(&self.wv.forward(v)?)?;
        let dh = (self.d_model / self.heads) as f32;
        // scores [B*H, Nq, Nk] = Q K^T / sqrt(dh)
        let scores = qh.bmm(&kh.permute(&[0, 2, 1])?)?.scale(1.0 / dh.sqrt());
        let attn = scores.softmax_last();
        let ctx = attn.bmm(&vh)?;
        let merged = self.merge_heads(&ctx, b, nq)?;
        self.wo.forward(&merged)
    }
}

impl Module for MultiHeadAttention {
    /// Self-attention: `forward(x) = forward_qkv(x, x, x)`.
    fn forward(&self, x: &Var) -> Result<Var> {
        self.forward_qkv(x, x, x)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.wq.parameters();
        p.extend(self.wk.parameters());
        p.extend(self.wv.parameters());
        p.extend(self.wo.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.wq.set_training(training);
        self.wk.set_training(training);
        self.wv.set_training(training);
        self.wo.set_training(training);
    }

    fn quantize(&self) -> usize {
        self.wq.quantize() + self.wk.quantize() + self.wv.quantize() + self.wo.quantize()
    }
}

/// Attention gate on a U-Net skip connection (Attention U-Net).
///
/// Given the gating signal `g` (decoder feature) and the skip feature `x`
/// (encoder feature) at the same spatial resolution, computes
/// `psi = sigmoid(conv1(relu(convg(g) + convx(x))))` and returns `x * psi`,
/// letting the decoder suppress feature responses in irrelevant IR regions
/// (paper §II-C).
#[derive(Debug)]
pub struct AttentionGate {
    conv_g: Conv2d,
    conv_x: Conv2d,
    psi: Conv2d,
}

impl AttentionGate {
    /// Creates an attention gate.
    ///
    /// `g_channels`/`x_channels` are the gating and skip channel counts,
    /// `inter_channels` the bottleneck width of the additive attention.
    #[must_use]
    pub fn new(
        g_channels: usize,
        x_channels: usize,
        inter_channels: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let one = ConvSpec::new(1, 0);
        AttentionGate {
            conv_g: Conv2d::new(g_channels, inter_channels, 1, one, true, rng),
            conv_x: Conv2d::new(x_channels, inter_channels, 1, one, true, rng),
            psi: Conv2d::new(inter_channels, 1, 1, one, true, rng),
        }
    }

    /// Applies the gate: returns the skip feature `x` modulated by attention
    /// coefficients derived from `g` and `x`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `g` and `x` disagree spatially.
    pub fn forward_gated(&self, g: &Var, x: &Var) -> Result<Var> {
        let gd = g.dims();
        let xd = x.dims();
        if gd.len() != 4 || xd.len() != 4 || gd[2] != xd[2] || gd[3] != xd[3] || gd[0] != xd[0] {
            return Err(TensorError::InvalidShape {
                dims: gd,
                reason: format!("attention gate needs matching N/H/W, got x {xd:?}"),
            });
        }
        let a = self.conv_g.forward(g)?;
        let b = self.conv_x.forward(x)?;
        let act = a.add(&b)?.relu();
        let psi = self.psi.forward(&act)?.sigmoid(); // [N, 1, H, W]
        x.mul(&psi)
    }
}

impl Module for AttentionGate {
    /// Degenerate single-input form: gates `x` with itself.
    fn forward(&self, x: &Var) -> Result<Var> {
        self.forward_gated(x, x)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.conv_g.parameters();
        p.extend(self.conv_x.parameters());
        p.extend(self.psi.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.conv_g.set_training(training);
        self.conv_x.set_training(training);
        self.psi.set_training(training);
    }

    fn quantize(&self) -> usize {
        self.conv_g.quantize() + self.conv_x.quantize() + self.psi.quantize()
    }
}

/// Weakness-aware channel attention (WACA-UNet, arXiv:2507.19197).
///
/// Squeeze-and-excitation style channel recalibration with a second
/// "weakness" pooling branch: alongside the usual global average of each
/// channel, the block pools the magnitude of the *negative* responses
/// (`mean(relu(-x))`), letting the gate react to channels whose activations
/// collapse in weak-signal regions — exactly the under-driven areas where
/// IR hotspots hide. Both pooled vectors pass through a shared two-layer
/// MLP with reduction ratio `r`; the sigmoid of their sum gates the input
/// per channel.
#[derive(Debug)]
pub struct ChannelAttention {
    fc1: Linear,
    fc2: Linear,
    channels: usize,
}

impl ChannelAttention {
    /// Creates a channel-attention block over `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics when `channels` or `reduction` is zero.
    #[must_use]
    pub fn new(channels: usize, reduction: usize, rng: &mut impl Rng) -> Self {
        assert!(
            channels > 0 && reduction > 0,
            "channel attention needs channels {channels} > 0 and reduction {reduction} > 0"
        );
        let hidden = (channels / reduction).max(1);
        ChannelAttention {
            fc1: Linear::new(channels, hidden, true, rng),
            fc2: Linear::new(hidden, channels, true, rng),
            channels,
        }
    }

    /// Channel count the block was built for.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Shared excitation MLP applied to a pooled `[N, C]` descriptor.
    fn excite(&self, pooled: &Var) -> Result<Var> {
        self.fc2.forward(&self.fc1.forward(pooled)?.relu())
    }
}

impl Module for ChannelAttention {
    /// Gates `x` (`[N, C, H, W]`) per channel; output shape equals input.
    fn forward(&self, x: &Var) -> Result<Var> {
        let d = x.dims();
        if d.len() != 4 || d[1] != self.channels {
            return Err(TensorError::InvalidShape {
                dims: d,
                reason: format!("channel attention expects [N, {}, H, W]", self.channels),
            });
        }
        let (n, c) = (d[0], d[1]);
        // Strength branch: global average pooling per channel.
        let avg = x.mean_axes(&[2, 3], false)?;
        // Weakness branch: average magnitude of the negative responses.
        let weak = x.scale(-1.0).relu().mean_axes(&[2, 3], false)?;
        let gate = self
            .excite(&avg)?
            .add(&self.excite(&weak)?)?
            .sigmoid()
            .reshape(&[n, c, 1, 1])?;
        x.mul(&gate)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.fc1.parameters();
        p.extend(self.fc2.parameters());
        p
    }

    fn set_training(&self, training: bool) {
        self.fc1.set_training(training);
        self.fc2.set_training(training);
    }

    fn quantize(&self) -> usize {
        self.fc1.quantize() + self.fc2.quantize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_var(dims: &[usize], seed: u64) -> Var {
        let mut rng = StdRng::seed_from_u64(seed);
        Var::constant(lmmir_tensor::init::uniform(dims, 1.0, &mut rng))
    }

    #[test]
    fn self_attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(16, 4, &mut rng);
        let x = rand_var(&[2, 10, 16], 1);
        let y = attn.forward(&x).unwrap();
        assert_eq!(y.dims(), vec![2, 10, 16]);
    }

    #[test]
    fn cross_attention_uses_query_length() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let q = rand_var(&[1, 5, 8], 2);
        let kv = rand_var(&[1, 12, 8], 3);
        let y = attn.forward_qkv(&q, &kv, &kv).unwrap();
        assert_eq!(y.dims(), vec![1, 5, 8]);
    }

    #[test]
    fn attention_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = rand_var(&[1, 5, 7], 4);
        assert!(attn.forward(&x).is_err());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn attention_panics_on_bad_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(10, 3, &mut rng);
    }

    #[test]
    fn attention_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = rand_var(&[1, 4, 8], 5);
        attn.forward(&x).unwrap().sum().backward();
        assert!(attn.parameters().iter().all(|p| p.grad().is_some()));
        assert_eq!(attn.parameters().len(), 8);
    }

    #[test]
    fn attention_rows_mix_tokens() {
        // With identical tokens, output rows must be identical; with
        // distinct tokens they generally differ.
        let mut rng = StdRng::seed_from_u64(0);
        let attn = MultiHeadAttention::new(4, 1, &mut rng);
        let same = Var::constant(Tensor::ones(&[1, 3, 4]));
        let y = attn.forward(&same).unwrap().to_tensor();
        let rows: Vec<&[f32]> = y.data().chunks(4).collect();
        assert_eq!(rows[0], rows[1]);
        assert_eq!(rows[1], rows[2]);
    }

    #[test]
    fn gate_output_bounded_by_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let gate = AttentionGate::new(4, 6, 3, &mut rng);
        let g = rand_var(&[2, 4, 8, 8], 7);
        let x = rand_var(&[2, 6, 8, 8], 8);
        let y = gate.forward_gated(&g, &x).unwrap();
        assert_eq!(y.dims(), vec![2, 6, 8, 8]);
        // psi in (0,1) so |y| <= |x| elementwise.
        let xv = x.to_tensor();
        for (yo, xo) in y.value().data().iter().zip(xv.data()) {
            assert!(yo.abs() <= xo.abs() + 1e-6);
        }
    }

    #[test]
    fn gate_rejects_spatial_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let gate = AttentionGate::new(4, 6, 3, &mut rng);
        let g = rand_var(&[1, 4, 8, 8], 9);
        let x = rand_var(&[1, 6, 4, 4], 10);
        assert!(gate.forward_gated(&g, &x).is_err());
    }

    #[test]
    fn channel_attention_gates_per_channel() {
        let mut rng = StdRng::seed_from_u64(0);
        let ca = ChannelAttention::new(6, 2, &mut rng);
        let x = rand_var(&[2, 6, 5, 5], 13);
        let y = ca.forward(&x).unwrap();
        assert_eq!(y.dims(), vec![2, 6, 5, 5]);
        // The gate is a per-(sample, channel) scalar in (0,1): within one
        // channel every pixel must be scaled by the same factor, and the
        // output magnitude never exceeds the input.
        let xv = x.to_tensor();
        let yv = y.to_tensor();
        for (xo, yo) in xv.data().chunks(25).zip(yv.data().chunks(25)) {
            let ratio = yo[0] / xo[0];
            assert!(ratio > 0.0 && ratio < 1.0, "gate outside (0,1): {ratio}");
            for (xi, yi) in xo.iter().zip(yo) {
                assert!((yi - xi * ratio).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn channel_attention_rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(0);
        let ca = ChannelAttention::new(4, 2, &mut rng);
        assert!(ca.forward(&rand_var(&[1, 3, 4, 4], 14)).is_err());
        assert!(ca.forward(&rand_var(&[4, 4, 4], 15)).is_err());
    }

    #[test]
    fn channel_attention_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let ca = ChannelAttention::new(4, 4, &mut rng);
        let x = rand_var(&[1, 4, 3, 3], 16);
        ca.forward(&x).unwrap().sum().backward();
        assert!(ca.parameters().iter().all(|p| p.grad().is_some()));
        assert_eq!(ca.parameters().len(), 4);
    }

    #[test]
    fn gate_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let gate = AttentionGate::new(2, 2, 2, &mut rng);
        let g = rand_var(&[1, 2, 4, 4], 11);
        let x = rand_var(&[1, 2, 4, 4], 12);
        gate.forward_gated(&g, &x).unwrap().sum().backward();
        assert!(gate.parameters().iter().all(|p| p.grad().is_some()));
    }
}
