//! Fully-connected layer.

use crate::module::Module;
use lmmir_tensor::quant::{matmul_nd_quantized, QuantLinearWeight};
use lmmir_tensor::{init, Result, Tensor, Var};
use rand::Rng;
use std::cell::RefCell;

/// Affine transform `y = x W + b` with `W: [in, out]`.
///
/// Accepts inputs of shape `[..., in]`; all leading axes are preserved, so
/// the same layer projects `[batch, features]` activations and
/// `[batch, tokens, features]` sequences.
///
/// After [`Module::quantize`], forward runs the int8 kernel on a cached
/// per-output-channel quantization of the weight (inference only — the
/// quantized path builds no graph). `set_training(true)` drops the cache.
#[derive(Debug)]
pub struct Linear {
    weight: Var,
    bias: Option<Var>,
    quant: RefCell<Option<QuantLinearWeight>>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let weight = Var::parameter(init::kaiming_uniform(
            &[in_features, out_features],
            in_features,
            rng,
        ));
        let bias = bias.then(|| {
            let bound = 1.0 / (in_features.max(1) as f32).sqrt();
            Var::parameter(init::uniform(&[out_features], bound, rng))
        });
        Linear {
            weight,
            bias,
            quant: RefCell::new(None),
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter (`[in, out]`).
    #[must_use]
    pub fn weight(&self) -> &Var {
        &self.weight
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var) -> Result<Var> {
        if let Some(qw) = self.quant.borrow().as_ref() {
            let mut y = matmul_nd_quantized(&x.value(), qw)?;
            if let Some(b) = &self.bias {
                let bv = b.value();
                for row in y.data_mut().chunks_mut(self.out_features) {
                    for (v, &bb) in row.iter_mut().zip(bv.data()) {
                        *v += bb;
                    }
                }
            }
            return Ok(Var::constant(y));
        }
        let y = x.matmul(&self.weight)?;
        match &self.bias {
            Some(b) => y.add(b),
            None => Ok(y),
        }
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    fn set_training(&self, training: bool) {
        if training {
            *self.quant.borrow_mut() = None;
        }
    }

    fn quantize(&self) -> usize {
        let qw = QuantLinearWeight::from_tensor(&self.weight.value())
            .expect("linear weight is rank-2 by construction");
        *self.quant.borrow_mut() = Some(qw);
        1
    }
}

/// Convenience constructor for a zero-initialized deterministic linear layer
/// (used in tests across the workspace).
impl Linear {
    /// Creates a layer with explicit weight/bias tensors.
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not `[in, out]` or the bias length differs
    /// from `out`.
    #[must_use]
    pub fn from_tensors(weight: Tensor, bias: Option<Tensor>) -> Self {
        assert_eq!(weight.rank(), 2, "linear weight must be [in, out]");
        let (in_features, out_features) = (weight.dims()[0], weight.dims()[1]);
        if let Some(b) = &bias {
            assert_eq!(b.dims(), [out_features], "bias length mismatch");
        }
        Linear {
            weight: Var::parameter(weight),
            bias: bias.map(Var::parameter),
            quant: RefCell::new(None),
            in_features,
            out_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_2d_and_3d() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(5, 3, true, &mut rng);
        let x2 = Var::constant(Tensor::zeros(&[4, 5]));
        assert_eq!(l.forward(&x2).unwrap().dims(), vec![4, 3]);
        let x3 = Var::constant(Tensor::zeros(&[2, 7, 5]));
        assert_eq!(l.forward(&x3).unwrap().dims(), vec![2, 7, 3]);
    }

    #[test]
    fn known_weights_compute_affine() {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let l = Linear::from_tensors(w, Some(b));
        let x = Var::constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap());
        let y = l.forward(&x).unwrap();
        assert_eq!(y.value().data(), &[14.0, 25.0]);
    }

    #[test]
    fn parameters_exposed_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(2, 2, true, &mut rng);
        assert_eq!(l.parameters().len(), 2);
        let l2 = Linear::new(2, 2, false, &mut rng);
        assert_eq!(l2.parameters().len(), 1);
    }

    #[test]
    fn quantized_forward_tracks_f32_and_training_restores_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new(16, 8, true, &mut rng);
        let x = Var::constant(init::uniform(&[4, 16], 1.0, &mut rng));
        let exact = l.forward(&x).unwrap().to_tensor();
        assert_eq!(l.quantize(), 1);
        let approx = l.forward(&x).unwrap().to_tensor();
        let worst = exact
            .data()
            .iter()
            .zip(approx.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst > 0.0, "int8 path should actually run");
        assert!(worst < 0.05, "divergence {worst} too large for 16-deep dot");
        // Switching back to training drops the int8 state bit-exactly.
        l.set_training(true);
        let restored = l.forward(&x).unwrap().to_tensor();
        assert_eq!(exact.data(), restored.data());
    }

    #[test]
    fn gradients_reach_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(3, 2, true, &mut rng);
        let x = Var::constant(Tensor::ones(&[4, 3]));
        l.forward(&x).unwrap().sum().backward();
        for p in l.parameters() {
            assert!(p.grad().is_some(), "parameter missing gradient");
        }
    }
}
