//! Inverted dropout.

use crate::module::Module;
use lmmir_tensor::{Result, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};

/// Inverted dropout: zeroes activations with probability `p` during training
/// and rescales survivors by `1/(1-p)`; identity in eval mode.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    training: Cell<bool>,
    rng: RefCell<StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own seeded
    /// mask RNG.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    #[must_use]
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            training: Cell::new(true),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Drop probability.
    #[must_use]
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Var) -> Result<Var> {
        if !self.training.get() || self.p == 0.0 {
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let dims = x.dims();
        let mut rng = self.rng.borrow_mut();
        let mask_data: Vec<f32> = (0..x.value().numel())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Var::constant(Tensor::from_vec(mask_data, &dims)?);
        x.mul(&mask)
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Var::constant(Tensor::ones(&[100]));
        let y = d.forward(&x).unwrap();
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn training_mode_zeroes_about_p() {
        let d = Dropout::new(0.5, 42);
        let x = Var::constant(Tensor::ones(&[10_000]));
        let y = d.forward(&x).unwrap();
        let zeros = y.value().data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros = {zeros}");
        // Survivors are rescaled to preserve expectation.
        let mean = y.value().mean_all();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn p_zero_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 0);
        let x = Var::constant(Tensor::ones(&[8]));
        assert_eq!(d.forward(&x).unwrap().value().data(), x.value().data());
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn invalid_p_panics() {
        let _ = Dropout::new(1.0, 0);
    }
}
