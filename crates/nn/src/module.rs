//! The [`Module`] trait and checkpoint helpers.

use lmmir_tensor::{Result, TensorError, Var};

/// A neural-network building block: maps one variable to another and exposes
/// its trainable parameters.
///
/// Layers that distinguish train/eval behaviour (batch-norm running
/// statistics, dropout masks) override [`Module::set_training`]; the default
/// is a no-op. Layers with int8 inference support override
/// [`Module::quantize`]. The trait is object-safe so heterogeneous stacks
/// can be composed with [`crate::Sequential`].
pub trait Module {
    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when the input shape is incompatible with
    /// the layer.
    fn forward(&self, x: &Var) -> Result<Var>;

    /// Trainable parameters in a deterministic order.
    fn parameters(&self) -> Vec<Var>;

    /// Switches train/eval behaviour (default: no-op).
    ///
    /// Containers must propagate this to **every** child: layers that
    /// support int8 inference drop their quantized state when switched to
    /// training, so a missed child would silently keep serving stale
    /// gradient-free int8 weights into a training loop.
    fn set_training(&self, _training: bool) {}

    /// Switches the layer to int8 inference where supported, quantizing its
    /// current weights in place with per-output-channel scales. Returns the
    /// number of layers now running quantized (default: 0 — most layers
    /// have nothing to quantize). Quantized state is inference-only: it is
    /// discarded by `set_training(true)` and never carries gradients.
    fn quantize(&self) -> usize {
        0
    }
}

/// Simple activation functions as composable modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through.
    Identity,
}

impl Module for Activation {
    fn forward(&self, x: &Var) -> Result<Var> {
        Ok(match self {
            Activation::Relu => x.relu(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x.clone(),
        })
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Snapshot of a module's parameters as `(index-name, tensor)` pairs.
///
/// Parameter ordering is defined by [`Module::parameters`], which is
/// deterministic for every layer in this crate, so the snapshot can be
/// restored into a freshly constructed model of the same architecture.
#[must_use]
pub fn state_dict(module: &dyn Module) -> Vec<(String, lmmir_tensor::Tensor)> {
    module
        .parameters()
        .iter()
        .enumerate()
        // Checkpoint boundary: snapshots are realized so they stay valid
        // buffers regardless of what happens to the live graph afterwards.
        .map(|(i, p)| {
            let t = p.to_tensor();
            t.force();
            (format!("param.{i}"), t)
        })
        .collect()
}

/// Restores a snapshot produced by [`state_dict`] into `module`.
///
/// # Errors
///
/// Returns [`TensorError::Io`] when the parameter count differs and
/// [`TensorError::ShapeMismatch`] when a tensor shape disagrees.
pub fn load_state_dict(
    module: &dyn Module,
    entries: &[(String, lmmir_tensor::Tensor)],
) -> Result<()> {
    let params = module.parameters();
    if params.len() != entries.len() {
        return Err(TensorError::Io(format!(
            "state dict has {} entries but module has {} parameters",
            entries.len(),
            params.len()
        )));
    }
    for (p, (_, t)) in params.iter().zip(entries) {
        if p.value().dims() != t.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: p.value().dims().to_vec(),
                rhs: t.dims().to_vec(),
                op: "load_state_dict",
            });
        }
    }
    for (p, (_, t)) in params.iter().zip(entries) {
        p.set_value(t.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_tensor::{Tensor, Var};

    #[test]
    fn activations_forward() {
        let x = Var::constant(Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap());
        assert_eq!(
            Activation::Relu.forward(&x).unwrap().value().data(),
            &[0.0, 2.0]
        );
        assert_eq!(
            Activation::Identity.forward(&x).unwrap().value().data(),
            &[-1.0, 2.0]
        );
        let s = Activation::Sigmoid.forward(&x).unwrap();
        assert!(s.value().data()[1] > 0.8);
        let t = Activation::Tanh.forward(&x).unwrap();
        assert!(t.value().data()[0] < 0.0);
    }

    struct TwoParams {
        a: Var,
        b: Var,
    }

    impl Module for TwoParams {
        fn forward(&self, x: &Var) -> Result<Var> {
            x.mul(&self.a)?.add(&self.b)
        }
        fn parameters(&self) -> Vec<Var> {
            vec![self.a.clone(), self.b.clone()]
        }
    }

    #[test]
    fn state_dict_round_trip() {
        let m = TwoParams {
            a: Var::parameter(Tensor::full(&[2], 3.0)),
            b: Var::parameter(Tensor::full(&[2], -1.0)),
        };
        let snapshot = state_dict(&m);
        m.a.set_value(Tensor::zeros(&[2]));
        load_state_dict(&m, &snapshot).unwrap();
        assert_eq!(m.a.value().data(), &[3.0, 3.0]);
    }

    #[test]
    fn load_rejects_wrong_count_and_shape() {
        let m = TwoParams {
            a: Var::parameter(Tensor::zeros(&[2])),
            b: Var::parameter(Tensor::zeros(&[2])),
        };
        assert!(load_state_dict(&m, &[]).is_err());
        let bad = vec![
            ("param.0".to_string(), Tensor::zeros(&[3])),
            ("param.1".to_string(), Tensor::zeros(&[2])),
        ];
        assert!(load_state_dict(&m, &bad).is_err());
    }
}
