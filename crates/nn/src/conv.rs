//! Convolution layers.

use crate::module::Module;
use lmmir_tensor::conv::{conv2d_quantized, ConvSpec};
use lmmir_tensor::quant::QuantConvWeight;
use lmmir_tensor::{init, Result, Var};
use rand::Rng;
use std::cell::RefCell;

/// 2-D convolution layer with weight `[out, in, k, k]`.
///
/// The LMM-IR circuit encoder stacks `7×7` convolutions (first stage) and
/// `3×3` convolutions (deeper stages), each followed by batch-norm and ReLU.
///
/// After [`Module::quantize`], forward runs the int8 im2col kernel on a
/// cached per-output-channel quantization of the weight (inference only).
/// `set_training(true)` drops the cache.
#[derive(Debug)]
pub struct Conv2d {
    weight: Var,
    bias: Option<Var>,
    quant: RefCell<Option<QuantConvWeight>>,
    spec: ConvSpec,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-uniform init.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: ConvSpec,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Var::parameter(init::kaiming_uniform(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = bias.then(|| {
            let bound = 1.0 / (fan_in.max(1) as f32).sqrt();
            Var::parameter(init::uniform(&[out_channels], bound, rng))
        });
        Conv2d {
            weight,
            bias,
            quant: RefCell::new(None),
            spec,
            in_channels,
            out_channels,
            kernel,
        }
    }

    /// "Same" convolution: stride 1 with padding `kernel / 2`.
    #[must_use]
    pub fn same(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Conv2d::new(
            in_channels,
            out_channels,
            kernel,
            ConvSpec::new(1, kernel / 2),
            true,
            rng,
        )
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var) -> Result<Var> {
        if let Some(qw) = self.quant.borrow().as_ref() {
            let bias = self.bias.as_ref().map(Var::value);
            let y = conv2d_quantized(&x.value(), qw, bias.as_deref(), self.spec)?;
            return Ok(Var::constant(y));
        }
        x.conv2d(&self.weight, self.bias.as_ref(), self.spec)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }

    fn set_training(&self, training: bool) {
        if training {
            *self.quant.borrow_mut() = None;
        }
    }

    fn quantize(&self) -> usize {
        let qw = QuantConvWeight::from_tensor(&self.weight.value())
            .expect("conv weight is rank-4 by construction");
        *self.quant.borrow_mut() = Some(qw);
        1
    }
}

/// Transposed 2-D convolution (deconvolution) with weight `[in, out, k, k]`.
///
/// The LMM-IR decoder uses four stride-2 deconvolutions to recover the
/// spatial resolution of the IR-drop map.
#[derive(Debug)]
pub struct ConvTranspose2d {
    weight: Var,
    bias: Option<Var>,
    spec: ConvSpec,
    in_channels: usize,
    out_channels: usize,
}

impl ConvTranspose2d {
    /// Creates a transposed-conv layer with Kaiming-uniform init.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: ConvSpec,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Var::parameter(init::kaiming_uniform(
            &[in_channels, out_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = bias.then(|| {
            let bound = 1.0 / (fan_in.max(1) as f32).sqrt();
            Var::parameter(init::uniform(&[out_channels], bound, rng))
        });
        ConvTranspose2d {
            weight,
            bias,
            spec,
            in_channels,
            out_channels,
        }
    }

    /// Standard ×2 upsampling deconvolution (kernel 2, stride 2).
    #[must_use]
    pub fn upsample2(in_channels: usize, out_channels: usize, rng: &mut impl Rng) -> Self {
        ConvTranspose2d::new(in_channels, out_channels, 2, ConvSpec::new(2, 0), true, rng)
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for ConvTranspose2d {
    fn forward(&self, x: &Var) -> Result<Var> {
        x.conv_transpose2d(&self.weight, self.bias.as_ref(), self.spec)
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmmir_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same_conv_preserves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::same(3, 8, 7, &mut rng);
        let x = Var::constant(Tensor::zeros(&[2, 3, 16, 16]));
        let y = c.forward(&x).unwrap();
        assert_eq!(y.dims(), vec![2, 8, 16, 16]);
    }

    #[test]
    fn strided_conv_halves() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::new(1, 4, 3, ConvSpec::new(2, 1), true, &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 1, 16, 16]));
        assert_eq!(c.forward(&x).unwrap().dims(), vec![1, 4, 8, 8]);
    }

    #[test]
    fn upsample2_doubles() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = ConvTranspose2d::upsample2(4, 2, &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 4, 8, 8]));
        assert_eq!(d.forward(&x).unwrap().dims(), vec![1, 2, 16, 16]);
    }

    #[test]
    fn conv_then_deconv_round_trips_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::new(2, 6, 2, ConvSpec::new(2, 0), true, &mut rng);
        let d = ConvTranspose2d::upsample2(6, 2, &mut rng);
        let x = Var::constant(Tensor::zeros(&[1, 2, 12, 12]));
        let y = d.forward(&c.forward(&x).unwrap()).unwrap();
        assert_eq!(y.dims(), vec![1, 2, 12, 12]);
    }

    #[test]
    fn quantized_conv_tracks_f32_and_training_restores_it() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = Conv2d::same(3, 8, 3, &mut rng);
        let x = Var::constant(lmmir_tensor::init::uniform(&[2, 3, 8, 8], 1.0, &mut rng));
        let exact = c.forward(&x).unwrap().to_tensor();
        assert_eq!(c.quantize(), 1);
        let approx = c.forward(&x).unwrap().to_tensor();
        let worst = exact
            .data()
            .iter()
            .zip(approx.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst > 0.0, "int8 path should actually run");
        assert!(worst < 0.05, "divergence {worst} too large for a 3x3 conv");
        c.set_training(true);
        let restored = c.forward(&x).unwrap().to_tensor();
        assert_eq!(exact.data(), restored.data());
    }

    #[test]
    fn gradients_reach_conv_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::same(1, 2, 3, &mut rng);
        let x = Var::constant(Tensor::ones(&[1, 1, 4, 4]));
        c.forward(&x).unwrap().sum().backward();
        for p in c.parameters() {
            assert!(p.grad().is_some());
        }
    }
}
