//! Module containers.

use crate::module::Module;
use lmmir_tensor::{Result, Var};

/// An ordered stack of modules applied sequentially.
///
/// ```
/// use lmmir_nn::{Activation, Linear, Module, Sequential};
/// use lmmir_tensor::{Tensor, Var};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), lmmir_tensor::TensorError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Sequential::new()
///     .push(Linear::new(4, 8, true, &mut rng))
///     .push(Activation::Relu)
///     .push(Linear::new(8, 1, true, &mut rng));
/// let y = mlp.forward(&Var::constant(Tensor::zeros(&[2, 4])))?;
/// assert_eq!(y.dims(), vec![2, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Module + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Module>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack holds no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var) -> Result<Var> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur)?;
        }
        // Module boundary: elementwise chains fuse freely *across* the
        // stacked layers, but the stack's output is realized here so
        // callers observe finished work (bounded pending-graph depth,
        // honest per-module timings).
        cur.value().force();
        Ok(cur)
    }

    fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.set_training(training);
        }
    }

    fn quantize(&self) -> usize {
        self.layers.iter().map(|l| l.quantize()).sum()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::module::Activation;
    use crate::norm::BatchNorm2d;
    use lmmir_tensor::{Tensor, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sequential_is_identity() {
        let s = Sequential::new();
        assert!(s.is_empty());
        let x = Var::constant(Tensor::ones(&[2]));
        assert_eq!(s.forward(&x).unwrap().value().data(), &[1.0, 1.0]);
    }

    #[test]
    fn collects_parameters_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Sequential::new()
            .push(Linear::new(2, 3, true, &mut rng))
            .push(Activation::Relu)
            .push(Linear::new(3, 1, false, &mut rng));
        assert_eq!(s.len(), 3);
        assert_eq!(s.parameters().len(), 3); // w,b,w
    }

    #[test]
    fn propagates_training_mode() {
        let bn = BatchNorm2d::new(2);
        let s = Sequential::new().push(bn);
        s.set_training(false);
        // Eval-mode batchnorm with default running stats is ~identity.
        let x = Var::constant(Tensor::ones(&[1, 2, 2, 2]));
        let y = s.forward(&x).unwrap();
        for v in y.value().data() {
            assert!((v - 1.0).abs() < 1e-2);
        }
    }
}
