//! # lmmir-nn
//!
//! Neural-network layers on top of [`lmmir_tensor`]: the `torch.nn`
//! equivalent used by the LMM-IR reproduction. Provides convolution,
//! batch/layer normalization, linear, embedding, dropout, pooling/upsampling
//! wrappers, multi-head self/cross attention and the attention gate from
//! Attention U-Net — every building block the paper's architecture needs.
//!
//! All layers implement [`Module`]; constructors take an explicit RNG so
//! weight initialization is reproducible under a fixed seed.
//!
//! ```
//! use lmmir_nn::{Linear, Module};
//! use lmmir_tensor::{Tensor, Var};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), lmmir_tensor::TensorError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let layer = Linear::new(4, 2, true, &mut rng);
//! let x = Var::constant(Tensor::zeros(&[3, 4]));
//! let y = layer.forward(&x)?;
//! assert_eq!(y.dims(), vec![3, 2]);
//! # Ok(())
//! # }
//! ```

pub mod attention;
pub mod container;
pub mod conv;
pub mod dropout;
pub mod embedding;
pub mod linear;
pub mod module;
pub mod norm;
pub mod pool;

pub use attention::{AttentionGate, ChannelAttention, MultiHeadAttention};
pub use container::Sequential;
pub use conv::{Conv2d, ConvTranspose2d};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use linear::Linear;
pub use module::{load_state_dict, state_dict, Activation, Module};
pub use norm::{BatchNorm2d, LayerNorm};
pub use pool::{MaxPool2d, UpsampleNearest2d};
