//! Normalization layers: batch normalization (2-D) and layer normalization.

use crate::module::Module;
use lmmir_tensor::{Result, Tensor, TensorError, Var};
use std::cell::{Cell, RefCell};

/// Batch normalization over `[N, C, H, W]` activations.
///
/// Normalizes per channel across the batch and spatial axes. During
/// training the layer uses batch statistics and updates exponential running
/// averages; during evaluation it normalizes with the stored running
/// statistics (PyTorch semantics; biased variance is used in both paths).
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Var,
    beta: Var,
    running_mean: RefCell<Tensor>,
    running_var: RefCell<Tensor>,
    channels: usize,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Var::parameter(Tensor::ones(&[1, channels, 1, 1])),
            beta: Var::parameter(Tensor::zeros(&[1, channels, 1, 1])),
            running_mean: RefCell::new(Tensor::zeros(&[1, channels, 1, 1])),
            running_var: RefCell::new(Tensor::ones(&[1, channels, 1, 1])),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
        }
    }

    /// Channel count the layer was built for.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Snapshot of the running mean (for tests/diagnostics).
    #[must_use]
    pub fn running_mean(&self) -> Tensor {
        self.running_mean.borrow().clone()
    }

    /// Snapshot of the running variance.
    #[must_use]
    pub fn running_var(&self) -> Tensor {
        self.running_var.borrow().clone()
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, x: &Var) -> Result<Var> {
        if x.value().rank() != 4 || x.value().dims()[1] != self.channels {
            return Err(TensorError::InvalidShape {
                dims: x.value().dims().to_vec(),
                reason: format!("BatchNorm2d expects [N, {}, H, W]", self.channels),
            });
        }
        if self.training.get() {
            let mean = x.mean_axes(&[0, 2, 3], true)?;
            let centered = x.sub(&mean)?;
            let var = centered.square().mean_axes(&[0, 2, 3], true)?;
            // Update running statistics outside the graph.
            {
                let m = self.momentum;
                let mut rm = self.running_mean.borrow_mut();
                let mut rv = self.running_var.borrow_mut();
                let bm = mean.to_tensor();
                let bv = var.to_tensor();
                let new_rm = rm.scale(1.0 - m).add(&bm.scale(m))?;
                let new_rv = rv.scale(1.0 - m).add(&bv.scale(m))?;
                *rm = new_rm;
                *rv = new_rv;
            }
            let denom = var.add_scalar(self.eps).sqrt();
            centered.div(&denom)?.mul(&self.gamma)?.add(&self.beta)
        } else {
            let rm = Var::constant(self.running_mean.borrow().clone());
            let rv = Var::constant(self.running_var.borrow().clone());
            let denom = rv.add_scalar(self.eps).sqrt();
            x.sub(&rm)?.div(&denom)?.mul(&self.gamma)?.add(&self.beta)
        }
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// Layer normalization over the last axis.
///
/// Used by the Large-scale Netlist Transformer (pre-LN transformer blocks).
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm for feature dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Var::parameter(Tensor::ones(&[dim])),
            beta: Var::parameter(Tensor::zeros(&[dim])),
            dim,
            eps: 1e-5,
        }
    }

    /// Normalized feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Module for LayerNorm {
    fn forward(&self, x: &Var) -> Result<Var> {
        let rank = x.value().rank();
        if rank == 0 || *x.value().dims().last().expect("rank >= 1") != self.dim {
            return Err(TensorError::InvalidShape {
                dims: x.value().dims().to_vec(),
                reason: format!("LayerNorm expects [..., {}]", self.dim),
            });
        }
        let last = rank - 1;
        let mean = x.mean_axes(&[last], true)?;
        let centered = x.sub(&mean)?;
        let var = centered.square().mean_axes(&[last], true)?;
        let denom = var.add_scalar(self.eps).sqrt();
        centered.div(&denom)?.mul(&self.gamma)?.add(&self.beta)
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_nchw(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect(), dims).unwrap()
    }

    #[test]
    fn batchnorm_normalizes_channels_in_training() {
        let bn = BatchNorm2d::new(3);
        let x = Var::constant(random_nchw(&[4, 3, 5, 5], 0).add_scalar(3.0));
        let y = bn.forward(&x).unwrap();
        let yt = y.to_tensor();
        // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
        let m = yt.mean_axes(&[0, 2, 3], false).unwrap();
        for &v in m.data() {
            assert!(v.abs() < 1e-4, "channel mean {v}");
        }
        let centered = yt.sub(&yt.mean_axes(&[0, 2, 3], true).unwrap()).unwrap();
        let var = centered
            .mul(&centered)
            .unwrap()
            .mean_axes(&[0, 2, 3], false)
            .unwrap();
        for &v in var.data() {
            assert!((v - 1.0).abs() < 1e-2, "channel var {v}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm2d::new(2);
        // Train on shifted data to move the running stats.
        for seed in 0..20 {
            let x = Var::constant(random_nchw(&[8, 2, 4, 4], seed).add_scalar(5.0));
            bn.forward(&x).unwrap();
        }
        assert!(bn.running_mean().mean_all() > 2.0);
        bn.set_training(false);
        // In eval, an input equal to the running mean maps near beta = 0.
        let rm = bn.running_mean();
        let x = Var::constant(Tensor::zeros(&[1, 2, 4, 4]).add(&rm).unwrap());
        let y = bn.forward(&x).unwrap();
        assert!(y.value().map(f32::abs).max_all() < 1e-3);
    }

    #[test]
    fn batchnorm_rejects_wrong_channels() {
        let bn = BatchNorm2d::new(3);
        let x = Var::constant(Tensor::zeros(&[1, 2, 4, 4]));
        assert!(bn.forward(&x).is_err());
    }

    #[test]
    fn batchnorm_gradients_flow_to_gamma_beta() {
        let bn = BatchNorm2d::new(2);
        let x = Var::constant(random_nchw(&[2, 2, 3, 3], 7));
        bn.forward(&x).unwrap().sum().backward();
        assert!(bn.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let ln = LayerNorm::new(8);
        let x = Var::constant(random_nchw(&[4, 8], 3).scale(5.0));
        let y = ln.forward(&x).unwrap().to_tensor();
        for row in y.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_rejects_wrong_width() {
        let ln = LayerNorm::new(8);
        let x = Var::constant(Tensor::zeros(&[4, 7]));
        assert!(ln.forward(&x).is_err());
    }

    #[test]
    fn layernorm_works_on_rank3_tokens() {
        let ln = LayerNorm::new(4);
        let x = Var::constant(random_nchw(&[2, 5, 4], 9));
        let y = ln.forward(&x).unwrap();
        assert_eq!(y.dims(), vec![2, 5, 4]);
    }
}
