//! Embedding table (index → dense vector lookup).

use crate::module::Module;
use lmmir_tensor::{init, Result, TensorError, Var};
use rand::Rng;

/// Learnable lookup table `[vocab, dim]`.
///
/// LMM-IR embeds discrete netlist attributes (element type R/I/V, metal
/// layer ids) with small embedding tables that are summed into the point
/// features.
#[derive(Debug)]
pub struct Embedding {
    weight: Var,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates an embedding with N(0, 0.02) initialization.
    #[must_use]
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        Embedding {
            weight: Var::parameter(init::normal(&[vocab, dim], 0.02, rng)),
            vocab,
            dim,
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a flat index list, returning `[indices.len(), dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an index ≥ vocab.
    pub fn lookup(&self, indices: &[usize]) -> Result<Var> {
        self.weight.gather_rows(indices)
    }

    /// Looks up a batch of token-index rows, returning `[b, n, dim]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for a bad index.
    pub fn lookup_batch(&self, indices: &[Vec<usize>]) -> Result<Var> {
        let b = indices.len();
        let n = indices.first().map_or(0, Vec::len);
        for row in indices {
            if row.len() != n {
                return Err(TensorError::InvalidShape {
                    dims: vec![row.len()],
                    reason: "ragged index batch".to_string(),
                });
            }
        }
        let flat: Vec<usize> = indices.iter().flatten().copied().collect();
        self.weight.gather_rows(&flat)?.reshape(&[b, n, self.dim])
    }
}

impl Module for Embedding {
    /// Not applicable to dense inputs; use [`Embedding::lookup`]. Returns the
    /// input unchanged so the type can still sit in diagnostics pipelines.
    fn forward(&self, x: &Var) -> Result<Var> {
        Ok(x.clone())
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(10, 4, &mut rng);
        let v = e.lookup(&[0, 3, 9]).unwrap();
        assert_eq!(v.dims(), vec![3, 4]);
        let b = e.lookup_batch(&[vec![0, 1], vec![2, 3]]).unwrap();
        assert_eq!(b.dims(), vec![2, 2, 4]);
    }

    #[test]
    fn out_of_vocab_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(4, 2, &mut rng);
        assert!(e.lookup(&[4]).is_err());
    }

    #[test]
    fn ragged_batch_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(4, 2, &mut rng);
        assert!(e.lookup_batch(&[vec![0], vec![1, 2]]).is_err());
    }

    #[test]
    fn repeated_indices_accumulate_gradient() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(4, 2, &mut rng);
        e.lookup(&[1, 1, 2]).unwrap().sum().backward();
        let g = e.parameters()[0].grad().unwrap();
        assert_eq!(g.at(&[1, 0]), 2.0);
        assert_eq!(g.at(&[2, 0]), 1.0);
        assert_eq!(g.at(&[0, 0]), 0.0);
    }
}
