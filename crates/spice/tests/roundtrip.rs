//! Property tests: netlist print→parse round-trips for arbitrary content.

use lmmir_spice::{Element, ElementKind, Netlist, NodeName, NodeRef};
use proptest::prelude::*;

fn arb_node() -> impl Strategy<Value = NodeRef> {
    prop_oneof![
        1 => Just(NodeRef::Ground),
        9 => (1u32..3, 1u8..10, 0i64..2_000_000, 0i64..2_000_000)
            .prop_map(|(net, layer, x, y)| NodeRef::Node(NodeName::new(net, layer, x, y))),
    ]
}

fn arb_element(i: usize) -> impl Strategy<Value = Element> {
    (arb_node(), arb_node(), 0..3usize, 1e-9f64..10.0).prop_map(move |(a, b, k, v)| {
        let kind = match k {
            0 => ElementKind::Resistor,
            1 => ElementKind::CurrentSource,
            _ => ElementKind::VoltageSource,
        };
        Element::new(format!("{}{}", kind.prefix(), i), kind, a, b, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trip(elems in prop::collection::vec((0usize..1).prop_flat_map(|_| arb_element(0)), 0..40)) {
        // Re-name elements with unique indices (names are free-form).
        let elems: Vec<Element> = elems
            .into_iter()
            .enumerate()
            .map(|(i, e)| Element::new(format!("{}{}", e.kind.prefix(), i), e.kind, e.a, e.b, e.value))
            .collect();
        let nl = Netlist::from_elements(elems);
        let text = nl.to_spice();
        let back = Netlist::parse_str(&text).unwrap();
        prop_assert_eq!(nl, back);
    }

    #[test]
    fn stats_never_panics_and_counts_add_up(elems in prop::collection::vec((0usize..1).prop_flat_map(|_| arb_element(0)), 0..60)) {
        let nl = Netlist::from_elements(elems);
        let s = nl.stats();
        prop_assert_eq!(s.resistors + s.current_sources + s.voltage_sources, nl.len());
        prop_assert!(s.vias <= s.resistors);
    }

    #[test]
    fn parser_never_panics_on_random_text(s in "[ -~\n]{0,256}") {
        let _ = Netlist::parse_str(&s); // must not panic, may error
    }
}
