//! Netlist serialization back to the contest SPICE dialect.

use crate::model::Netlist;
use std::io::Write;
use std::path::Path;

impl Netlist {
    /// Serializes the netlist to the contest SPICE dialect (ends with
    /// `.end`). Round-trips through [`Netlist::parse_str`].
    #[must_use]
    pub fn to_spice(&self) -> String {
        let mut out = String::with_capacity(self.len() * 40 + 16);
        for e in self.elements() {
            out.push_str(&e.name);
            out.push(' ');
            // NodeRef Display allocates; build inline for throughput.
            use std::fmt::Write as _;
            let _ = write!(out, "{} {} {}", e.a, e.b, format_value(e.value));
            out.push('\n');
        }
        out.push_str(".end\n");
        out
    }

    /// Writes the netlist to an arbitrary writer (a `&mut W` also works).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_spice<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for e in self.elements() {
            writeln!(w, "{} {} {} {}", e.name, e.a, e.b, format_value(e.value))?;
        }
        writeln!(w, ".end")
    }

    /// Writes the netlist to a file path.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_spice(std::io::BufWriter::new(file))
    }
}

/// Formats a value so it parses back to the identical `f64`.
fn format_value(v: f64) -> String {
    // Shortest round-trip formatting: Rust's `{}` for f64 is already
    // round-trip capable.
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use crate::model::{Element, ElementKind, Netlist, NodeName, NodeRef};

    fn sample() -> Netlist {
        Netlist::from_elements(vec![
            Element::new(
                "R1",
                ElementKind::Resistor,
                NodeRef::Node(NodeName::new(1, 1, 0, 0)),
                NodeRef::Node(NodeName::new(1, 1, 2000, 0)),
                0.2625,
            ),
            Element::new(
                "I1",
                ElementKind::CurrentSource,
                NodeRef::Node(NodeName::new(1, 1, 2000, 0)),
                NodeRef::Ground,
                1.17e-5,
            ),
            Element::new(
                "V1",
                ElementKind::VoltageSource,
                NodeRef::Node(NodeName::new(1, 9, 4000, 4000)),
                NodeRef::Ground,
                1.1,
            ),
        ])
    }

    #[test]
    fn round_trip_exact() {
        let nl = sample();
        let text = nl.to_spice();
        let back = Netlist::parse_str(&text).unwrap();
        assert_eq!(nl, back);
    }

    #[test]
    fn ends_with_end_directive() {
        assert!(sample().to_spice().ends_with(".end\n"));
    }

    #[test]
    fn write_spice_matches_to_spice() {
        let nl = sample();
        let mut buf = Vec::new();
        nl.write_spice(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), nl.to_spice());
    }

    #[test]
    fn extreme_values_round_trip() {
        let nl = Netlist::from_elements(vec![Element::new(
            "I1",
            ElementKind::CurrentSource,
            NodeRef::Node(NodeName::new(1, 1, 0, 0)),
            NodeRef::Ground,
            3.141592653589793e-12,
        )]);
        let back = Netlist::parse_str(&nl.to_spice()).unwrap();
        assert_eq!(back.elements()[0].value, 3.141592653589793e-12);
    }
}
