//! # lmmir-spice
//!
//! Parser, data model and writer for the SPICE power-delivery-network (PDN)
//! dialect used by the ICCAD-2023 CAD contest on static IR-drop estimation —
//! the netlist modality consumed by LMM-IR.
//!
//! The dialect is small but appears at large scale (contest netlists reach
//! hundreds of thousands to millions of elements):
//!
//! ```text
//! * comment
//! R1 n1_m1_4800_0 n1_m1_5600_0 0.26
//! I2 n1_m1_5600_0 0 1.17e-05
//! V3 n1_m9_4000_4000 0 1.1
//! .end
//! ```
//!
//! Node names encode the PDN geometry: `n<net>_m<layer>_<x>_<y>` with
//! coordinates in database units. Resistors whose endpoints sit on different
//! metal layers are **vias** — the inter-layer connections the paper's point
//! cloud representation is designed to preserve.
//!
//! ```
//! use lmmir_spice::Netlist;
//!
//! # fn main() -> Result<(), lmmir_spice::ParseNetlistError> {
//! let src = "R1 n1_m1_0_0 n1_m1_2000_0 0.5\nI1 n1_m1_2000_0 0 0.003\nV1 n1_m4_0_0 0 1.1\n.end\n";
//! let netlist = Netlist::parse_str(src)?;
//! assert_eq!(netlist.len(), 3);
//! assert_eq!(netlist.stats().resistors, 1);
//! # Ok(())
//! # }
//! ```

pub mod model;
pub mod parse;
pub mod validate;
pub mod write;

pub use model::{Element, ElementKind, Netlist, NetlistStats, NodeName, NodeRef};
pub use parse::ParseNetlistError;
pub use validate::{validate, Finding, ValidationReport};
