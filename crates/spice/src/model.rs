//! Typed netlist data model.

use std::collections::HashMap;
use std::fmt;

/// A structured PDN node name: `n<net>_m<layer>_<x>_<y>`.
///
/// Coordinates are in database units (DBU). The contest data uses
/// 2000 DBU = 1 µm; the scale is carried by consumers, not by the name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeName {
    /// Power net index (`n1` for VDD in the contest data).
    pub net: u32,
    /// Metal layer index (`m1`, `m4`, ...).
    pub layer: u8,
    /// X coordinate in DBU.
    pub x: i64,
    /// Y coordinate in DBU.
    pub y: i64,
}

impl NodeName {
    /// Creates a node name.
    #[must_use]
    pub fn new(net: u32, layer: u8, x: i64, y: i64) -> Self {
        NodeName { net, layer, x, y }
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}_m{}_{}_{}", self.net, self.layer, self.x, self.y)
    }
}

/// Either the global ground (`0`) or a named PDN node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// The SPICE ground node `0`.
    Ground,
    /// A structured PDN node.
    Node(NodeName),
}

impl NodeRef {
    /// The structured name, if this is not ground.
    #[must_use]
    pub fn name(&self) -> Option<&NodeName> {
        match self {
            NodeRef::Ground => None,
            NodeRef::Node(n) => Some(n),
        }
    }

    /// True for the ground node.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        matches!(self, NodeRef::Ground)
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Ground => write!(f, "0"),
            NodeRef::Node(n) => write!(f, "{n}"),
        }
    }
}

/// Kind of a two-terminal PDN element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Wire or via resistance (Ω).
    Resistor,
    /// Cell/instance current draw (A), from node to ground.
    CurrentSource,
    /// Supply pad (V), from node to ground.
    VoltageSource,
}

impl ElementKind {
    /// SPICE name prefix (`R`/`I`/`V`).
    #[must_use]
    pub fn prefix(&self) -> char {
        match self {
            ElementKind::Resistor => 'R',
            ElementKind::CurrentSource => 'I',
            ElementKind::VoltageSource => 'V',
        }
    }

    /// Small integer code, used by the point-cloud encoder's type embedding.
    #[must_use]
    pub fn code(&self) -> usize {
        match self {
            ElementKind::Resistor => 0,
            ElementKind::CurrentSource => 1,
            ElementKind::VoltageSource => 2,
        }
    }
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix())
    }
}

/// One two-terminal element of the PDN netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Instance name as written in the file (e.g. `R12`).
    pub name: String,
    /// Element kind, derived from the name prefix.
    pub kind: ElementKind,
    /// First terminal.
    pub a: NodeRef,
    /// Second terminal.
    pub b: NodeRef,
    /// Element value (Ω, A or V).
    pub value: f64,
}

impl Element {
    /// Creates an element; the `kind` must agree with the name prefix by
    /// construction in the parser/generator.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        kind: ElementKind,
        a: NodeRef,
        b: NodeRef,
        value: f64,
    ) -> Self {
        Element {
            name: name.into(),
            kind,
            a,
            b,
            value,
        }
    }

    /// True when this resistor connects two different metal layers (a via).
    ///
    /// Vias are load-bearing for IR analysis: the paper's point-cloud
    /// encoding keeps both layer ids precisely so via positions survive the
    /// embedding.
    #[must_use]
    pub fn is_via(&self) -> bool {
        match (self.kind, self.a.name(), self.b.name()) {
            (ElementKind::Resistor, Some(a), Some(b)) => a.layer != b.layer,
            _ => false,
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.name, self.a, self.b, self.value)
    }
}

/// Summary statistics of a netlist (element counts, node count, extents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of resistors (including vias).
    pub resistors: usize,
    /// Number of vias (inter-layer resistors).
    pub vias: usize,
    /// Number of current sources.
    pub current_sources: usize,
    /// Number of voltage sources.
    pub voltage_sources: usize,
    /// Number of distinct non-ground nodes.
    pub nodes: usize,
    /// Number of distinct metal layers.
    pub layers: usize,
    /// Bounding box `(min_x, min_y, max_x, max_y)` in DBU.
    pub bbox: (i64, i64, i64, i64),
}

/// A parsed PDN netlist: an ordered list of elements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    elements: Vec<Element>,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Creates a netlist from elements.
    #[must_use]
    pub fn from_elements(elements: Vec<Element>) -> Self {
        Netlist { elements }
    }

    /// Appends an element.
    pub fn push(&mut self, e: Element) {
        self.elements.push(e);
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the netlist has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The elements in file order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, Element> {
        self.elements.iter()
    }

    /// Builds a dense index of all distinct non-ground nodes.
    ///
    /// Node order is first-appearance order, which is deterministic for a
    /// given file and is the node numbering used by the solver.
    #[must_use]
    pub fn node_index(&self) -> HashMap<NodeName, usize> {
        let mut map = HashMap::new();
        for e in &self.elements {
            for r in [&e.a, &e.b] {
                if let Some(n) = r.name() {
                    let next = map.len();
                    map.entry(*n).or_insert(next);
                }
            }
        }
        map
    }

    /// Computes summary statistics in one pass.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            bbox: (i64::MAX, i64::MAX, i64::MIN, i64::MIN),
            ..NetlistStats::default()
        };
        let mut nodes = std::collections::HashSet::new();
        let mut layers = std::collections::HashSet::new();
        for e in &self.elements {
            match e.kind {
                ElementKind::Resistor => {
                    s.resistors += 1;
                    if e.is_via() {
                        s.vias += 1;
                    }
                }
                ElementKind::CurrentSource => s.current_sources += 1,
                ElementKind::VoltageSource => s.voltage_sources += 1,
            }
            for r in [&e.a, &e.b] {
                if let Some(n) = r.name() {
                    nodes.insert(*n);
                    layers.insert(n.layer);
                    s.bbox.0 = s.bbox.0.min(n.x);
                    s.bbox.1 = s.bbox.1.min(n.y);
                    s.bbox.2 = s.bbox.2.max(n.x);
                    s.bbox.3 = s.bbox.3.max(n.y);
                }
            }
        }
        if nodes.is_empty() {
            s.bbox = (0, 0, 0, 0);
        }
        s.nodes = nodes.len();
        s.layers = layers.len();
        s
    }

    /// Total current drawn by all current sources (A).
    #[must_use]
    pub fn total_current(&self) -> f64 {
        self.elements
            .iter()
            .filter(|e| e.kind == ElementKind::CurrentSource)
            .map(|e| e.value)
            .sum()
    }

    /// Supply voltage, taken from the first voltage source (if any).
    #[must_use]
    pub fn supply_voltage(&self) -> Option<f64> {
        self.elements
            .iter()
            .find(|e| e.kind == ElementKind::VoltageSource)
            .map(|e| e.value)
    }
}

impl FromIterator<Element> for Netlist {
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Self {
        Netlist {
            elements: iter.into_iter().collect(),
        }
    }
}

impl Extend<Element> for Netlist {
    fn extend<I: IntoIterator<Item = Element>>(&mut self, iter: I) {
        self.elements.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Netlist {
    type Item = &'a Element;
    type IntoIter = std::slice::Iter<'a, Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter()
    }
}

impl IntoIterator for Netlist {
    type Item = Element;
    type IntoIter = std::vec::IntoIter<Element>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(layer: u8, x: i64, y: i64) -> NodeRef {
        NodeRef::Node(NodeName::new(1, layer, x, y))
    }

    #[test]
    fn node_name_display() {
        let n = NodeName::new(1, 4, 2000, 36000);
        assert_eq!(n.to_string(), "n1_m4_2000_36000");
        assert_eq!(NodeRef::Ground.to_string(), "0");
    }

    #[test]
    fn via_detection() {
        let via = Element::new(
            "R1",
            ElementKind::Resistor,
            node(1, 0, 0),
            node(4, 0, 0),
            2.0,
        );
        assert!(via.is_via());
        let wire = Element::new(
            "R2",
            ElementKind::Resistor,
            node(1, 0, 0),
            node(1, 2000, 0),
            0.5,
        );
        assert!(!wire.is_via());
        let isrc = Element::new(
            "I1",
            ElementKind::CurrentSource,
            node(1, 0, 0),
            NodeRef::Ground,
            0.01,
        );
        assert!(!isrc.is_via());
    }

    #[test]
    fn node_index_is_first_appearance_order() {
        let nl = Netlist::from_elements(vec![
            Element::new(
                "R1",
                ElementKind::Resistor,
                node(1, 0, 0),
                node(1, 2000, 0),
                1.0,
            ),
            Element::new(
                "R2",
                ElementKind::Resistor,
                node(1, 2000, 0),
                node(1, 4000, 0),
                1.0,
            ),
        ]);
        let ix = nl.node_index();
        assert_eq!(ix.len(), 3);
        assert_eq!(ix[&NodeName::new(1, 1, 0, 0)], 0);
        assert_eq!(ix[&NodeName::new(1, 1, 2000, 0)], 1);
        assert_eq!(ix[&NodeName::new(1, 1, 4000, 0)], 2);
    }

    #[test]
    fn stats_counts_and_bbox() {
        let nl = Netlist::from_elements(vec![
            Element::new(
                "R1",
                ElementKind::Resistor,
                node(1, 0, 0),
                node(1, 2000, 0),
                1.0,
            ),
            Element::new(
                "R2",
                ElementKind::Resistor,
                node(1, 2000, 0),
                node(4, 2000, 0),
                2.0,
            ),
            Element::new(
                "I1",
                ElementKind::CurrentSource,
                node(1, 0, 0),
                NodeRef::Ground,
                0.01,
            ),
            Element::new(
                "V1",
                ElementKind::VoltageSource,
                node(4, 2000, 0),
                NodeRef::Ground,
                1.1,
            ),
        ]);
        let s = nl.stats();
        assert_eq!(s.resistors, 2);
        assert_eq!(s.vias, 1);
        assert_eq!(s.current_sources, 1);
        assert_eq!(s.voltage_sources, 1);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.layers, 2);
        assert_eq!(s.bbox, (0, 0, 2000, 0));
        assert_eq!(nl.supply_voltage(), Some(1.1));
        assert!((nl.total_current() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_netlist_stats() {
        let nl = Netlist::new();
        assert!(nl.is_empty());
        let s = nl.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.bbox, (0, 0, 0, 0));
        assert_eq!(nl.supply_voltage(), None);
    }

    #[test]
    fn netlist_collects_from_iterator() {
        let nl: Netlist = (0..3)
            .map(|i| {
                Element::new(
                    format!("R{i}"),
                    ElementKind::Resistor,
                    node(1, i, 0),
                    node(1, i + 1, 0),
                    1.0,
                )
            })
            .collect();
        assert_eq!(nl.len(), 3);
        let total: usize = (&nl).into_iter().count();
        assert_eq!(total, 3);
    }
}
