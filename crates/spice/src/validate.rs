//! Netlist validation: structural checks a PDN must pass before analysis.
//!
//! The golden solver reports *some* of these as solve-time errors; this
//! module finds them all up front with designer-readable diagnostics, the
//! way a commercial tool's ERC (electrical rule check) stage would.

use crate::model::{ElementKind, Netlist, NodeName};
use std::collections::{HashMap, HashSet, VecDeque};

/// One validation finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// No voltage source anywhere: nothing defines a reference.
    NoSupply,
    /// A node is touched only by sources (no resistive path at all).
    DanglingNode {
        /// The offending node.
        node: NodeName,
    },
    /// A node has no resistive path to any voltage source.
    DisconnectedFromSupply {
        /// The offending node.
        node: NodeName,
        /// Size of its connected component.
        component_size: usize,
    },
    /// A resistor with a suspicious value (zero or enormous).
    SuspiciousResistance {
        /// Element name.
        name: String,
        /// The value.
        value: f64,
    },
    /// Two voltage sources drive different voltages on the same net
    /// component (would create a contention current path).
    ConflictingSupplies {
        /// The two source values.
        values: (f64, f64),
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::NoSupply => write!(f, "netlist has no voltage source"),
            Finding::DanglingNode { node } => {
                write!(f, "node {node} has sources but no resistor")
            }
            Finding::DisconnectedFromSupply {
                node,
                component_size,
            } => write!(
                f,
                "node {node} (component of {component_size} nodes) has no path to a supply"
            ),
            Finding::SuspiciousResistance { name, value } => {
                write!(f, "resistor {name} has suspicious value {value}")
            }
            Finding::ConflictingSupplies { values } => write!(
                f,
                "conflicting supply voltages {} and {} on connected nodes",
                values.0, values.1
            ),
        }
    }
}

/// Result of a full validation pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValidationReport {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// True when no problems were found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs all electrical rule checks on a netlist.
#[must_use]
pub fn validate(netlist: &Netlist) -> ValidationReport {
    let mut report = ValidationReport::default();

    // Adjacency over resistors (ground excluded: it is not part of the
    // power net), plus bookkeeping for per-node element participation.
    let mut adjacency: HashMap<NodeName, Vec<NodeName>> = HashMap::new();
    let mut has_resistor: HashSet<NodeName> = HashSet::new();
    let mut touched: HashSet<NodeName> = HashSet::new();
    let mut supplies: Vec<(NodeName, f64)> = Vec::new();

    for e in netlist.iter() {
        for r in [&e.a, &e.b] {
            if let Some(n) = r.name() {
                touched.insert(*n);
            }
        }
        match e.kind {
            ElementKind::Resistor => {
                if e.value <= 0.0 || e.value > 1e9 {
                    report.findings.push(Finding::SuspiciousResistance {
                        name: e.name.clone(),
                        value: e.value,
                    });
                }
                if let (Some(a), Some(b)) = (e.a.name(), e.b.name()) {
                    if a != b {
                        adjacency.entry(*a).or_default().push(*b);
                        adjacency.entry(*b).or_default().push(*a);
                    }
                    has_resistor.insert(*a);
                    has_resistor.insert(*b);
                } else if let Some(n) = e.a.name().or_else(|| e.b.name()) {
                    // Resistor to ground still counts as resistive contact.
                    has_resistor.insert(*n);
                }
            }
            ElementKind::VoltageSource => {
                if let Some(n) = e.a.name().or_else(|| e.b.name()) {
                    supplies.push((*n, e.value));
                }
            }
            ElementKind::CurrentSource => {}
        }
    }

    if supplies.is_empty() {
        report.findings.push(Finding::NoSupply);
    }

    // Dangling: touched by elements but never by a resistor.
    for n in &touched {
        if !has_resistor.contains(n) {
            report.findings.push(Finding::DanglingNode { node: *n });
        }
    }

    // Connected components + supply reachability + supply conflicts.
    let mut component: HashMap<NodeName, usize> = HashMap::new();
    let mut sizes: Vec<usize> = Vec::new();
    for n in adjacency.keys() {
        if component.contains_key(n) {
            continue;
        }
        let id = sizes.len();
        let mut size = 0;
        let mut queue = VecDeque::from([*n]);
        component.insert(*n, id);
        while let Some(cur) = queue.pop_front() {
            size += 1;
            for next in adjacency.get(&cur).into_iter().flatten() {
                if !component.contains_key(next) {
                    component.insert(*next, id);
                    queue.push_back(*next);
                }
            }
        }
        sizes.push(size);
    }
    let mut supplied: HashSet<usize> = HashSet::new();
    let mut supply_value: HashMap<usize, f64> = HashMap::new();
    for (n, v) in &supplies {
        if let Some(&c) = component.get(n) {
            supplied.insert(c);
            if let Some(&prev) = supply_value.get(&c) {
                if (prev - v).abs() > 1e-12 {
                    report
                        .findings
                        .push(Finding::ConflictingSupplies { values: (prev, *v) });
                }
            } else {
                supply_value.insert(c, *v);
            }
        }
    }
    // Report one representative node per unsupplied component.
    let mut reported: HashSet<usize> = HashSet::new();
    let mut nodes: Vec<&NodeName> = component.keys().collect();
    nodes.sort_unstable();
    for n in nodes {
        let c = component[n];
        if !supplied.contains(&c) && !reported.contains(&c) {
            reported.insert(c);
            report.findings.push(Finding::DisconnectedFromSupply {
                node: *n,
                component_size: sizes[c],
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_netlist_passes() {
        let nl = Netlist::parse_str(
            "V1 n1_m4_0_0 0 1.1\nR1 n1_m4_0_0 n1_m1_0_0 0.5\nI1 n1_m1_0_0 0 0.01\n",
        )
        .unwrap();
        let r = validate(&nl);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn detects_missing_supply() {
        let nl = Netlist::parse_str("R1 n1_m1_0_0 n1_m1_2_0 1.0\n").unwrap();
        let r = validate(&nl);
        assert!(r.findings.contains(&Finding::NoSupply));
    }

    #[test]
    fn detects_dangling_node() {
        let nl = Netlist::parse_str(
            "V1 n1_m1_0_0 0 1.1\nR1 n1_m1_0_0 n1_m1_2_0 1.0\nI1 n1_m1_9_9 0 0.01\n",
        )
        .unwrap();
        let r = validate(&nl);
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::DanglingNode { node } if node.x == 9)));
    }

    #[test]
    fn detects_disconnected_island() {
        let nl = Netlist::parse_str(
            "V1 n1_m1_0_0 0 1.1\nR1 n1_m1_0_0 n1_m1_2_0 1.0\n\
             R2 n1_m1_100_0 n1_m1_102_0 1.0\nI1 n1_m1_102_0 0 0.01\n",
        )
        .unwrap();
        let r = validate(&nl);
        assert!(r.findings.iter().any(|f| matches!(
            f,
            Finding::DisconnectedFromSupply {
                component_size: 2,
                ..
            }
        )));
    }

    #[test]
    fn detects_conflicting_supplies() {
        let nl = Netlist::parse_str(
            "V1 n1_m1_0_0 0 1.1\nV2 n1_m1_2_0 0 0.9\nR1 n1_m1_0_0 n1_m1_2_0 1.0\n",
        )
        .unwrap();
        let r = validate(&nl);
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ConflictingSupplies { .. })));
    }

    #[test]
    fn same_voltage_supplies_do_not_conflict() {
        let nl = Netlist::parse_str(
            "V1 n1_m1_0_0 0 1.1\nV2 n1_m1_2_0 0 1.1\nR1 n1_m1_0_0 n1_m1_2_0 1.0\n",
        )
        .unwrap();
        let r = validate(&nl);
        assert!(!r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ConflictingSupplies { .. })));
    }

    #[test]
    fn flags_zero_resistance() {
        let nl = Netlist::parse_str("V1 n1_m1_0_0 0 1.1\nR1 n1_m1_0_0 n1_m1_2_0 0.0\n").unwrap();
        let r = validate(&nl);
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::SuspiciousResistance { .. })));
    }

    #[test]
    fn findings_display() {
        assert!(Finding::NoSupply.to_string().contains("voltage source"));
    }
}
