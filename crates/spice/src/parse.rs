//! Line-oriented parser for the contest SPICE dialect.
//!
//! The parser is hand-rolled (no regex) because contest netlists reach
//! millions of lines; it allocates only for element names.

use crate::model::{Element, ElementKind, Netlist, NodeName, NodeRef};
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Error produced while parsing a netlist, with 1-based line location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line number of the offending line (0 for I/O errors).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl ParseNetlistError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseNetlistError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseNetlistError {}

fn parse_node(token: &str, line: usize) -> Result<NodeRef, ParseNetlistError> {
    if token == "0" {
        return Ok(NodeRef::Ground);
    }
    // Expected: n<net>_m<layer>_<x>_<y>
    let err = || ParseNetlistError::new(line, format!("malformed node name `{token}`"));
    let rest = token.strip_prefix(['n', 'N']).ok_or_else(err)?;
    let mut parts = rest.split('_');
    let net: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let layer_tok = parts.next().ok_or_else(err)?;
    let layer: u8 = layer_tok
        .strip_prefix(['m', 'M'])
        .ok_or_else(err)?
        .parse()
        .map_err(|_| err())?;
    let x: i64 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let y: i64 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    if parts.next().is_some() {
        return Err(err());
    }
    Ok(NodeRef::Node(NodeName::new(net, layer, x, y)))
}

fn parse_line(line: &str, lineno: usize) -> Result<Option<Element>, ParseNetlistError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('*') {
        return Ok(None);
    }
    if let Some(directive) = trimmed.strip_prefix('.') {
        let word = directive.split_whitespace().next().unwrap_or("");
        return match word.to_ascii_lowercase().as_str() {
            "end" | "ends" | "title" | "option" | "options" => Ok(None),
            other => Err(ParseNetlistError::new(
                lineno,
                format!("unsupported directive `.{other}`"),
            )),
        };
    }
    let mut tok = trimmed.split_whitespace();
    let name = tok
        .next()
        .ok_or_else(|| ParseNetlistError::new(lineno, "empty element line"))?;
    let kind = match name.chars().next().map(|c| c.to_ascii_uppercase()) {
        Some('R') => ElementKind::Resistor,
        Some('I') => ElementKind::CurrentSource,
        Some('V') => ElementKind::VoltageSource,
        _ => {
            return Err(ParseNetlistError::new(
                lineno,
                format!("unknown element prefix in `{name}` (expected R/I/V)"),
            ))
        }
    };
    let a_tok = tok
        .next()
        .ok_or_else(|| ParseNetlistError::new(lineno, "missing first node"))?;
    let b_tok = tok
        .next()
        .ok_or_else(|| ParseNetlistError::new(lineno, "missing second node"))?;
    let v_tok = tok
        .next()
        .ok_or_else(|| ParseNetlistError::new(lineno, "missing value"))?;
    if tok.next().is_some() {
        return Err(ParseNetlistError::new(
            lineno,
            "trailing tokens on element line",
        ));
    }
    let a = parse_node(a_tok, lineno)?;
    let b = parse_node(b_tok, lineno)?;
    let value: f64 = v_tok
        .parse()
        .map_err(|_| ParseNetlistError::new(lineno, format!("bad value `{v_tok}`")))?;
    if !value.is_finite() {
        return Err(ParseNetlistError::new(lineno, "non-finite value"));
    }
    if kind == ElementKind::Resistor && value < 0.0 {
        return Err(ParseNetlistError::new(lineno, "negative resistance"));
    }
    Ok(Some(Element::new(name, kind, a, b, value)))
}

impl Netlist {
    /// Parses a netlist from a string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetlistError`] with the offending line number on
    /// malformed input.
    pub fn parse_str(src: &str) -> Result<Self, ParseNetlistError> {
        let mut elements = Vec::new();
        for (i, line) in src.lines().enumerate() {
            if let Some(e) = parse_line(line, i + 1)? {
                elements.push(e);
            }
        }
        Ok(Netlist::from_elements(elements))
    }

    /// Parses a netlist from any buffered reader.
    ///
    /// A `&mut R` can be passed where `R: BufRead`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetlistError`] on I/O failure (line 0) or malformed
    /// input.
    pub fn parse_reader<R: BufRead>(reader: R) -> Result<Self, ParseNetlistError> {
        let mut elements = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| ParseNetlistError::new(0, format!("io error: {e}")))?;
            if let Some(e) = parse_line(&line, i + 1)? {
                elements.push(e);
            }
        }
        Ok(Netlist::from_elements(elements))
    }

    /// Parses a netlist from a file path.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetlistError`] on I/O failure or malformed input.
    pub fn parse_file(path: impl AsRef<Path>) -> Result<Self, ParseNetlistError> {
        let file = std::fs::File::open(path)
            .map_err(|e| ParseNetlistError::new(0, format!("cannot open file: {e}")))?;
        Netlist::parse_reader(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_elements() {
        let src = "\
* PDN for testcase
R1 n1_m1_0_0 n1_m1_2000_0 0.26
I1 n1_m1_2000_0 0 1.17e-05
V1 n1_m9_4000_4000 0 1.1
.end
";
        let nl = Netlist::parse_str(src).unwrap();
        assert_eq!(nl.len(), 3);
        assert_eq!(nl.elements()[0].kind, ElementKind::Resistor);
        assert_eq!(nl.elements()[1].kind, ElementKind::CurrentSource);
        assert_eq!(nl.elements()[2].kind, ElementKind::VoltageSource);
        assert!((nl.elements()[1].value - 1.17e-5).abs() < 1e-12);
        let v = nl.elements()[2].a.name().unwrap();
        assert_eq!((v.layer, v.x, v.y), (9, 4000, 4000));
    }

    #[test]
    fn skips_comments_blank_lines_and_known_directives() {
        let src = "\n* comment\n\n.title foo\nR1 n1_m1_0_0 n1_m1_2_0 1.0\n.END\n";
        let nl = Netlist::parse_str(src).unwrap();
        assert_eq!(nl.len(), 1);
    }

    #[test]
    fn reports_line_numbers() {
        let src = "R1 n1_m1_0_0 n1_m1_2_0 1.0\nR2 bad_node 0 1.0\n";
        let err = Netlist::parse_str(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bad_node"));
    }

    #[test]
    fn rejects_unknown_prefix() {
        let err = Netlist::parse_str("C1 n1_m1_0_0 0 1.0\n").unwrap_err();
        assert!(err.message.contains("unknown element prefix"));
    }

    #[test]
    fn rejects_malformed_values_and_arity() {
        assert!(Netlist::parse_str("R1 n1_m1_0_0 n1_m1_2_0 abc\n").is_err());
        assert!(Netlist::parse_str("R1 n1_m1_0_0 n1_m1_2_0\n").is_err());
        assert!(Netlist::parse_str("R1 n1_m1_0_0 n1_m1_2_0 1.0 extra\n").is_err());
        assert!(Netlist::parse_str("R1 n1_m1_0_0 n1_m1_2_0 -5\n").is_err());
        assert!(Netlist::parse_str("R1 n1_m1_0_0 n1_m1_2_0 inf\n").is_err());
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = Netlist::parse_str(".subckt foo\n").unwrap_err();
        assert!(err.message.contains("unsupported directive"));
    }

    #[test]
    fn negative_source_values_allowed() {
        // Negative current (injection) is physically meaningful.
        let nl = Netlist::parse_str("I1 n1_m1_0_0 0 -0.5\n").unwrap();
        assert_eq!(nl.elements()[0].value, -0.5);
    }

    #[test]
    fn parse_reader_matches_parse_str() {
        let src = "R1 n1_m1_0_0 n1_m1_2_0 1.0\nV1 n1_m4_0_0 0 1.1\n";
        let a = Netlist::parse_str(src).unwrap();
        let b = Netlist::parse_reader(src.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn case_insensitive_prefixes() {
        let nl = Netlist::parse_str("r1 N1_M1_0_0 n1_m1_2_0 1.0\nv2 n1_m4_0_0 0 1.1\n").unwrap();
        assert_eq!(nl.elements()[0].kind, ElementKind::Resistor);
        assert_eq!(nl.elements()[1].kind, ElementKind::VoltageSource);
    }

    #[test]
    fn large_coordinates_fit() {
        let nl =
            Netlist::parse_str("R1 n1_m1_1860000_1860000 n1_m1_1862000_1860000 0.1\n").unwrap();
        let n = nl.elements()[0].a.name().unwrap();
        assert_eq!(n.x, 1_860_000);
    }
}
