#!/usr/bin/env bash
# Merges guard/loadgen JSON records into a tracked benchmark file:
#
#   ci/merge-bench.sh TARGET.json key=file.json [key=file.json ...]
#
# Each record lands under its key; the special key `flat` merges the
# record's top-level fields directly into TARGET (used to fold a
# kernels-guard section back into the committed BENCH_kernels.json).
# A missing TARGET starts from an empty object.
set -euo pipefail
target=$1
shift
python3 - "$target" "$@" <<'EOF'
import json
import sys

target = sys.argv[1]
try:
    with open(target) as f:
        bench = json.load(f)
except FileNotFoundError:
    bench = {}
for spec in sys.argv[2:]:
    key, path = spec.split("=", 1)
    with open(path) as f:
        record = json.load(f)
    if key == "flat":
        bench.update(record)
    else:
        bench[key] = record
with open(target, "w") as f:
    json.dump(bench, f, indent=2)
    f.write("\n")
EOF
cat "$target"
