#!/usr/bin/env bash
# Starts a serve instance in the background and blocks until /healthz
# answers (up to 30 s), so smoke steps never race the listener.
#
#   ci/start-serve.sh ADDR [serve args...]
set -euo pipefail
addr=$1
shift
target/release/serve --addr "$addr" "$@" &
for _ in $(seq 1 60); do
  if curl -fsS "http://$addr/healthz" > /dev/null 2>&1; then
    exit 0
  fi
  sleep 0.5
done
echo "serve at $addr never became healthy" >&2
exit 1
