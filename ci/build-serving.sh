#!/usr/bin/env bash
# Builds the release binaries the serving smoke jobs exercise.
set -euo pipefail
cargo build --release -p lmmir-serve -p lmmir-bench --bin serve --bin loadgen
