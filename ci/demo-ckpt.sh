#!/usr/bin/env bash
# Trains and checkpoints a tiny demo model for the smoke jobs.
#
#   ci/demo-ckpt.sh PATH ARCH [extra serve demo-ckpt args...]
#
# Defaults match the CI regime (32 px, 1 epoch); extra args override or
# extend (e.g. --widths 8,16 --cases 1 for the full-config LMM-IR).
set -euo pipefail
path=$1
arch=$2
shift 2
target/release/serve demo-ckpt "$path" --arch "$arch" --size 32 --epochs 1 "$@"
