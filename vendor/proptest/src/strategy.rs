//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// This is the non-shrinking core of proptest's `Strategy`: `generate` draws
/// one value from a deterministic generator, and the combinators compose
/// recipes the same way upstream proptest does.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between type-erased strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` arms. Panics if all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Strategy for &str {
    type Value = String;

    /// A `&str` is interpreted as a regex-like pattern, as in upstream
    /// proptest (subset: literals, `[..]` classes, `{m,n}` / `*` / `+` / `?`).
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_map_and_flat_map_compose() {
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(-1.0f32..1.0, n).prop_map(move |v| (n, v)));
        let mut r = rng();
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut r);
            assert_eq!(v.len(), n);
            assert!((1..5).contains(&n));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_arms_never_firing() {
        let strat = crate::prop_oneof![
            1 => Just(0u8),
            0 => Just(1u8),
            3 => Just(2u8),
        ];
        let mut r = rng();
        let draws: Vec<u8> = (0..200).map(|_| strat.generate(&mut r)).collect();
        assert!(draws.iter().all(|&d| d != 1));
        assert!(draws.contains(&0) && draws.contains(&2));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c, d) = (1u32..3, 1u8..10, 0i64..100, 0.0f64..1.0).generate(&mut r);
        assert!((1..3).contains(&a));
        assert!((1..10).contains(&b));
        assert!((0..100).contains(&c));
        assert!((0.0..1.0).contains(&d));
    }
}
