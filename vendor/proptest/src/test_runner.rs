//! Deterministic test-run configuration and per-case generators.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration. Only the case count is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies — deterministic per `(test, case)`.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the generator for case `case` of the named test. The name is
    /// folded into the seed (FNV-1a) so distinct tests explore distinct
    /// streams while staying reproducible across runs and platforms.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash ^ (u64::from(case) << 1)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn cases_and_tests_get_distinct_deterministic_streams() {
        let a: u64 = TestRng::for_case("t1", 0).gen();
        assert_eq!(a, TestRng::for_case("t1", 0).gen::<u64>());
        assert_ne!(a, TestRng::for_case("t1", 1).gen::<u64>());
        assert_ne!(a, TestRng::for_case("t2", 0).gen::<u64>());
    }
}
