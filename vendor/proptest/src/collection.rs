//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub min: usize,
    /// Largest allowed length.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_all_size_forms() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 24).generate(&mut rng).len(), 24);
            let l = vec(0u8..5, 1..4).generate(&mut rng).len();
            assert!((1..4).contains(&l));
            let m = vec(0u8..5, 2..=6).generate(&mut rng).len();
            assert!((2..=6).contains(&m));
        }
    }
}
