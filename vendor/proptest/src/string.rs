//! Regex-subset string generation, backing the `&str`-as-strategy form.
//!
//! Supported syntax: literal characters, character classes `[a-z\n]`
//! (ranges, escapes `\n \t \r \\ \] \-`), and the quantifiers `{n}`,
//! `{m,n}`, `*`, `+`, `?` applied to the preceding atom. This covers the
//! patterns used in the workspace's property tests (e.g. `"[ -~\n]{0,256}"`).

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`. Panics on syntax outside the
/// supported subset so misuse fails loudly at test time.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            out.push(match &piece.atom {
                Atom::Literal(c) => *c,
                Atom::Class(ranges) => sample_class(ranges, rng),
            });
        }
    }
    out
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.gen_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("class range stays in char space");
        }
        pick -= span;
    }
    unreachable!("class pick exceeded total span")
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        i += 1;
        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
            i += 1;
            let hi = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        i < chars.len(),
        "unterminated character class in pattern {pattern:?}"
    );
    (ranges, i + 1)
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        Some('*') => {
            *i += 1;
            (0, 16)
        }
        Some('+') => {
            *i += 1;
            (1, 16)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printable_ascii_class_with_bounds() {
        let mut rng = TestRng::for_case("string::tests", 0);
        for _ in 0..200 {
            let s = generate_from_pattern("[ -~\n]{0,256}", &mut rng);
            assert!(s.chars().count() <= 256);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_classes_and_quantifiers() {
        let mut rng = TestRng::for_case("string::tests", 1);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        let s = generate_from_pattern("x[0-9]{3}y?", &mut rng);
        assert!(s.starts_with('x'));
        assert!(s[1..4].chars().all(|c| c.is_ascii_digit()));
        let t = generate_from_pattern("[a-cx]{8}", &mut rng);
        assert!(t.chars().all(|c| matches!(c, 'a'..='c' | 'x')));
        assert_eq!(t.len(), 8);
    }
}
