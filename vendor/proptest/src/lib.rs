//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! deterministic subset of proptest 1.x:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * range, tuple, [`Just`], [`prop_oneof!`], string-regex and
//!   [`collection::vec`] strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike upstream proptest there is **no shrinking**: inputs are drawn from
//! a per-case deterministic generator, so a failing case reproduces exactly
//! on rerun, and the harness reports which case index failed.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::ProptestConfig;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced strategy constructors (`prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Defines deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     // In a test module this would also carry `#[test]`.
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic; rerun reproduces)",
                        stringify!($name),
                        case + 1,
                        config.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks between strategies with relative integer weights.
///
/// ```
/// use proptest::prelude::*;
/// let _coin = prop_oneof![
///     1 => Just(false),
///     3 => Just(true),
/// ];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}
