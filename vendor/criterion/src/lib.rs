//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the criterion 0.5 API its bench targets use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — median of `sample_size` wall-clock
//! samples after one warm-up, printed one line per benchmark. Under
//! `cargo test` (cargo passes `--test` to `harness = false` bench binaries)
//! benchmarks are skipped entirely so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported for convenience; prefer `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let test_mode = self.test_mode;
        run_one(&id.to_string(), 10, None, test_mode, &mut f);
    }
}

/// A set of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares work per iteration so results can be read as throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.test_mode,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group. (No summary output in this stand-in.)
    pub fn finish(&mut self) {}
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units of work performed per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    median: Duration,
}

impl Bencher {
    /// Measures `f`: one warm-up call, then `sample_size` timed calls;
    /// records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if test_mode {
        println!("bench {name}: skipped (--test mode)");
        return;
    }
    let mut b = Bencher {
        sample_size,
        median: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.median;
    match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
            println!("bench {name}: {per_iter:?}/iter ({rate:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("bench {name}: {per_iter:?}/iter ({rate:.0} elem/s)");
        }
        _ => println!("bench {name}: {per_iter:?}/iter"),
    }
}

/// Collects benchmark functions into one callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_groups_end_to_end() {
        criterion_group!(benches, bench_demo);
        benches();
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("solve", "32um").to_string(), "solve/32um");
        assert_eq!(BenchmarkId::from_parameter(512).to_string(), "512");
    }
}
