//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of the rand 0.8 API that the LMM-IR crates actually use:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! * [`seq::SliceRandom::shuffle`]
//!
//! Everything is deterministic given a seed: `StdRng` is xoshiro256**
//! initialised through SplitMix64, so identical seeds yield identical
//! streams across runs and platforms — a property the workspace's
//! determinism tests rely on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
///
/// Mirrors sampling from rand's `Standard` distribution: floats are uniform
/// in `[0, 1)`, integers take the full width, `bool` is a fair coin.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `lo..hi` (`inclusive = false`) or `lo..=hi`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges a value can be drawn from, uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic, fast, and statistically sound for
    /// simulation workloads (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let u: f64 = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&u));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_inc = [false; 4];
        for _ in 0..500 {
            seen_inc[rng.gen_range(1usize..=4) - 1] = true;
        }
        assert!(seen_inc.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
