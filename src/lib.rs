//! # lmm-ir-repro
//!
//! Workspace façade for the LMM-IR reproduction (Ma et al., DAC 2025:
//! *LMM-IR: Large-Scale Netlist-Aware Multimodal Framework for Static
//! IR-Drop Prediction*).
//!
//! This crate re-exports the workspace layers under stable module names so
//! downstream users can depend on a single crate:
//!
//! * [`par`] — scoped fork-join layer with deterministic partitioning
//! * [`tensor`] — dense f32 tensors + reverse-mode autograd (CPU substrate)
//! * [`nn`] — neural-network layers (conv/norm/attention/embedding)
//! * [`spice`] — ICCAD-2023 PDN SPICE dialect parser/writer
//! * [`solver`] — golden static IR-drop analysis (stamping + CG)
//! * [`pdn`] — contest-style benchmark generation (BeGAN substitute)
//! * [`features`] — circuit feature-map extraction
//! * [`model`] — the LMM-IR model, baselines, training and metrics
//! * [`serve`] — batched HTTP inference server (registry, cache, metrics)
//!
//! ```
//! use lmm_ir_repro::pdn::{CaseKind, CaseSpec};
//! use lmm_ir_repro::features::FeatureStack;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let case = CaseSpec::new("hello", 24, 24, 1, CaseKind::Fake).generate();
//! let ir = case.solve()?;
//! println!("worst IR drop: {:.4} V", ir.worst_drop());
//! assert_eq!(FeatureStack::extended(&case).channels(), 6);
//! # Ok(())
//! # }
//! ```

/// Scoped fork-join parallelism (`LMMIR_THREADS`).
pub use lmmir_par as par;

/// Dense tensors and reverse-mode autograd.
pub use lmmir_tensor as tensor;

/// Neural-network layers.
pub use lmmir_nn as nn;

/// SPICE PDN netlist dialect.
pub use lmmir_spice as spice;

/// Golden IR-drop solver.
pub use lmmir_solver as solver;

/// Benchmark generation.
pub use lmmir_pdn as pdn;

/// Feature-map extraction.
pub use lmmir_features as features;

/// The LMM-IR model, baselines, training, metrics and pipeline.
pub use lmm_ir as model;

/// Batched HTTP inference serving.
pub use lmmir_serve as serve;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch one item per module so a broken re-export fails this test.
        let _ = crate::tensor::Tensor::scalar(1.0);
        let _ = crate::spice::Netlist::new();
        let _ = crate::model::table1();
        let _ = crate::pdn::TESTCASE_SHAPES;
        let _ = crate::serve::ServeConfig::default();
    }
}
