//! The golden analysis flow: generate a PDN, solve it exactly, and dump
//! every feature map plus the IR-drop ground truth as CSV/PGM files.
//!
//! ```bash
//! cargo run --release --example golden_flow
//! ```
//!
//! This is the "commercial tool" path of the paper's Fig. 1: the slow exact
//! analysis whose outputs become training data for the learned predictor.

use lmmir_features::io::{save_csv, save_pgm};
use lmmir_features::{ir_drop_map, FeatureStack};
use lmmir_pdn::{CaseKind, CaseSpec};
use std::path::PathBuf;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = PathBuf::from("bench_out/golden_flow");
    std::fs::create_dir_all(&out)?;

    // A pad-starved "real-style" design makes an interesting IR map.
    let spec = CaseSpec::new("golden_demo", 64, 64, 21, CaseKind::Real);
    println!(
        "generating {} ({}x{} um)...",
        spec.id, spec.width, spec.height
    );
    let case = spec.generate();
    let stats = case.stats();
    println!(
        "  netlist: {} elements, {} nodes, {} vias, {} pads",
        case.netlist.len(),
        stats.nodes,
        stats.vias,
        stats.voltage_sources
    );

    let t0 = Instant::now();
    let ir = case.solve()?;
    println!(
        "  golden solve: {} CG iterations in {:.2}s, worst drop {:.4} V ({:.1}% of VDD)",
        ir.iterations,
        t0.elapsed().as_secs_f64(),
        ir.worst_drop(),
        100.0 * ir.worst_drop() / case.tech.vdd
    );

    let (w, h) = (case.power.width(), case.power.height());
    let dbu = case.tech.dbu_per_um;
    let truth = ir_drop_map(&ir, &case.netlist, w, h, dbu);
    save_csv(out.join("ir_drop.csv"), &truth)?;
    save_pgm(out.join("ir_drop.pgm"), &truth)?;

    for (kind, raster) in FeatureStack::extended(&case).iter() {
        save_csv(out.join(format!("{}.csv", kind.name())), raster)?;
        save_pgm(out.join(format!("{}.pgm", kind.name())), raster)?;
        println!(
            "  {:<16} min {:>10.4}  max {:>10.4}  mean {:>10.4}",
            kind.name(),
            raster.min(),
            raster.max(),
            raster.mean()
        );
    }
    println!("wrote CSV + PGM files to {}", out.display());
    Ok(())
}
