//! Quickstart: the full LMM-IR flow on one tiny generated design.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small PDN benchmark, runs the golden IR solver for ground
//! truth, trains a miniature LMM-IR for a few epochs and reports the
//! prediction quality.

use lmm_ir::{
    build_sample, evaluate, train, IrPredictor, LmmIr, LmmIrConfig, LntConfig, TrainConfig,
};
use lmmir_pdn::{CaseKind, CaseSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate training and evaluation designs (32×32 µm chips).
    println!("generating PDN benchmarks and golden IR solutions...");
    let input_size = 32;
    let train_specs: Vec<CaseSpec> = (0..8)
        .map(|i| {
            let kind = if i < 6 {
                CaseKind::Fake
            } else {
                CaseKind::Real
            };
            CaseSpec::new(format!("train{i}"), 32, 32, 100 + i, kind)
        })
        .collect();
    let train_set: Vec<_> = train_specs
        .iter()
        .map(|s| build_sample(s, input_size))
        .collect::<Result<_, _>>()?;
    let eval_set = vec![build_sample(
        &CaseSpec::new("eval", 32, 32, 999, CaseKind::Hidden),
        input_size,
    )?];
    println!(
        "  {} training cases, eval case has {} nodes (golden solve {:.2}s)",
        train_set.len(),
        eval_set[0].nodes,
        eval_set[0].golden_seconds
    );

    // 2. Build a miniature LMM-IR.
    let cfg = LmmIrConfig {
        widths: vec![8, 16],
        input_size,
        lnt: LntConfig {
            d_model: 16,
            heads: 2,
            layers: 1,
            max_points: 128,
            chunk: 128,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    };
    let model = LmmIr::new(cfg);
    println!(
        "model: {} ({} parameter tensors, multimodal = {})",
        model.name(),
        model.parameters().len(),
        model.uses_netlist()
    );

    // 3. Train (two-stage: reconstruction pre-train, then IR fine-tune).
    let tcfg = TrainConfig {
        epochs: 25,
        pretrain_epochs: 2,
        oversample: (1, 2),
        ..TrainConfig::quick()
    };
    println!(
        "training {} epochs (+{} pre-train)...",
        tcfg.epochs, tcfg.pretrain_epochs
    );
    let report = train(&model, &train_set, &tcfg)?;
    println!(
        "  fine-tune loss: first {:.5} -> last {:.5}",
        report.losses.first().copied().unwrap_or(f32::NAN),
        report.final_loss()
    );

    // 4. Evaluate on the held-out case.
    let rows = evaluate(&model, &eval_set)?;
    let r = &rows[0];
    println!(
        "eval {}: F1@90% = {:.2}, MAE = {:.2}e-4 V, TAT = {:.3}s (golden: {:.2}s)",
        r.id, r.f1, r.mae_e4, r.tat, eval_set[0].golden_seconds
    );
    println!(
        "speed-up over golden solver: {:.0}x",
        eval_set[0].golden_seconds / r.tat
    );
    Ok(())
}
