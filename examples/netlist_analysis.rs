//! Netlist analysis: parse a contest-style SPICE PDN, inspect its
//! structure, and encode it as the point cloud the LNT consumes.
//!
//! ```bash
//! cargo run --release --example netlist_analysis [path/to/netlist.sp]
//! ```
//!
//! Without an argument, a benchmark netlist is generated on the fly and
//! round-tripped through the SPICE writer/parser first.

use lmm_ir::{Lnt, LntConfig, PointCloud};
use lmmir_pdn::{CaseKind, CaseSpec};
use lmmir_spice::Netlist;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = match std::env::args().nth(1) {
        Some(path) => {
            println!("parsing {path}...");
            Netlist::parse_file(&path)?
        }
        None => {
            println!("no file given; generating a 48x48 um benchmark PDN...");
            let case = CaseSpec::new("demo", 48, 48, 7, CaseKind::Real).generate();
            // Round-trip through the SPICE dialect to exercise the parser.
            let text = case.netlist.to_spice();
            println!("  serialized to {} bytes of SPICE", text.len());
            Netlist::parse_str(&text)?
        }
    };

    let stats = netlist.stats();
    println!("\nnetlist statistics:");
    println!("  elements          : {}", netlist.len());
    println!(
        "  resistors         : {} ({} vias)",
        stats.resistors, stats.vias
    );
    println!("  current sources   : {}", stats.current_sources);
    println!("  voltage sources   : {}", stats.voltage_sources);
    println!("  distinct nodes    : {}", stats.nodes);
    println!("  metal layers      : {}", stats.layers);
    println!(
        "  bounding box (dbu): ({}, {}) .. ({}, {})",
        stats.bbox.0, stats.bbox.1, stats.bbox.2, stats.bbox.3
    );
    println!("  total current     : {:.4} A", netlist.total_current());
    if let Some(vdd) = netlist.supply_voltage() {
        println!("  supply voltage    : {vdd} V");
    }

    // Encode as a point cloud (the LNT's input representation).
    let w_um = (stats.bbox.2 - stats.bbox.0).max(1) as f64 / 2000.0;
    let h_um = (stats.bbox.3 - stats.bbox.1).max(1) as f64 / 2000.0;
    let cloud = PointCloud::from_netlist(&netlist, 2000, w_um, h_um);
    println!(
        "\npoint cloud: {} points ({} vias)",
        cloud.len(),
        cloud.via_count()
    );
    let sub = cloud.subsample(256);
    println!(
        "after importance subsampling to 256: {} points, vias kept: {}",
        sub.len(),
        sub.via_count()
    );

    // Run the netlist transformer over the cloud.
    let lnt = Lnt::new(LntConfig::quick(), &mut StdRng::seed_from_u64(0));
    let tokens = lnt.encode_cloud(&cloud)?;
    println!(
        "LNT embedding: {:?} (tokens x d_model), finite = {}",
        tokens.dims(),
        !tokens.value().has_non_finite()
    );
    Ok(())
}
