//! Model comparison: train LMM-IR against an image-only baseline on the
//! same data and show the multimodal advantage.
//!
//! ```bash
//! cargo run --release --example model_compare
//! ```

use lmm_ir::{
    average, build_sample, evaluate, iredge, train, IrPredictor, LmmIr, LmmIrConfig, LntConfig,
    TrainConfig,
};
use lmmir_pdn::{CaseKind, CaseSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input_size = 32;
    println!("building data (train: 6 cases, eval: 3 hidden cases)...");
    let train_set: Vec<_> = (0..6)
        .map(|i| {
            let kind = if i < 4 {
                CaseKind::Fake
            } else {
                CaseKind::Real
            };
            build_sample(
                &CaseSpec::new(format!("tr{i}"), 32, 32, 300 + i, kind),
                input_size,
            )
        })
        .collect::<Result<_, _>>()?;
    let eval_set: Vec<_> = (0..3)
        .map(|i| {
            build_sample(
                &CaseSpec::new(format!("hidden{i}"), 32, 32, 900 + i, CaseKind::Hidden),
                input_size,
            )
        })
        .collect::<Result<_, _>>()?;

    let tcfg = TrainConfig {
        epochs: 10,
        pretrain_epochs: 1,
        oversample: (1, 2),
        ..TrainConfig::quick()
    };

    let lmm_cfg = LmmIrConfig {
        widths: vec![8, 16],
        input_size,
        lnt: LntConfig {
            d_model: 16,
            heads: 2,
            layers: 1,
            max_points: 192,
            chunk: 96,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    };
    let ours = LmmIr::new(lmm_cfg);
    let baseline = iredge(input_size, 77);

    let header = format!(
        "{:<10} {:>8} {:>10} {:>8}",
        "Model", "F1", "MAE(e-4)", "TAT(s)"
    );
    println!("\n{header}");
    println!("{}", "-".repeat(header.len()));
    for model in [&ours as &dyn IrPredictor, &baseline as &dyn IrPredictor] {
        print!("training {:<10}...", model.name());
        train(model, &train_set, &tcfg)?;
        let rows = evaluate(model, &eval_set)?;
        let avg = average(&rows);
        println!(
            "\r{:<10} {:>8.2} {:>10.2} {:>8.3}",
            model.name(),
            avg.f1,
            avg.mae_e4,
            avg.tat
        );
    }
    println!("\n(IREDGe sees 3 basic channels; LMM-IR additionally fuses the netlist");
    println!(" point cloud via its Large-scale Netlist Transformer.)");
    Ok(())
}
