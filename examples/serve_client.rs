//! End-to-end serving walkthrough: train a small model, save a checkpoint,
//! start the batched inference server in-process, and query it
//! programmatically — the same exchange `serve`/`loadgen` speak over the
//! wire.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use lmm_ir_repro::model::{build_sample, iredge, save_predictor, train, TrainConfig};
use lmm_ir_repro::pdn::{CaseKind, CaseSpec};
use lmm_ir_repro::serve::{client, Client, PredictRequest, RegistrySpec, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SIZE: usize = 16;

    // 1. Train a small IREDGe on two generated cases and checkpoint it.
    let model = iredge(SIZE, 7);
    let samples = vec![
        build_sample(&CaseSpec::new("t0", SIZE, SIZE, 1, CaseKind::Fake), SIZE)?,
        build_sample(&CaseSpec::new("t1", SIZE, SIZE, 2, CaseKind::Fake), SIZE)?,
    ];
    let cfg = TrainConfig {
        epochs: 3,
        pretrain_epochs: 0,
        oversample: (1, 1),
        ..TrainConfig::quick()
    };
    train(&model, &samples, &cfg)?;
    let ckpt = std::env::temp_dir().join("lmmir_serve_client_example.lmmt");
    save_predictor(&model, &ckpt)?;
    println!("checkpoint: {}", ckpt.display());

    // 2. Serve it on an ephemeral port (2 inference threads, batches of 8).
    let server = Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: Some(2),
            ..ServeConfig::default()
        },
        RegistrySpec::single("demo", &ckpt),
    )?;
    let addr = server.addr();
    println!("serving on http://{addr}");

    // 3. Query it over one persistent keep-alive connection: a fresh
    //    hidden-style design, power map + netlist. Round 0 runs a forward
    //    pass; later rounds are served straight from the result cache.
    let case = CaseSpec::new("query", SIZE, SIZE, 99, CaseKind::Hidden).generate();
    let request = PredictRequest::from_case(&case);
    let mut cli = Client::new(addr.to_string());
    for round in 0..3 {
        let t0 = std::time::Instant::now();
        let resp = cli.predict(&request)?;
        let worst = resp.map.iter().cloned().fold(0.0f32, f32::max);
        let hotspots: usize = resp.mask.iter().map(|&m| usize::from(m)).sum();
        println!(
            "round {round}: {}×{} map in {:.1} ms — worst drop {:.2} mV, \
             {hotspots} hotspot px over {:.2} mV (feature cache {})",
            resp.width,
            resp.height,
            t0.elapsed().as_secs_f64() * 1e3,
            worst * 1e3,
            resp.threshold * 1e3,
            if resp.cache_hit { "hit" } else { "miss" },
        );
    }
    drop(cli); // close the keep-alive connection before draining

    // 4. Peek at the server's own counters, then shut down gracefully.
    let (_, metrics) = client::get_text(addr, "/metrics")?;
    let interesting = metrics
        .lines()
        .filter(|l| l.contains("cache") || l.contains("batch"))
        .collect::<Vec<_>>()
        .join("\n");
    println!("{interesting}");
    server.stop();
    std::fs::remove_file(&ckpt).ok();
    Ok(())
}
