//! PDN fixing loop: use a trained predictor to sweep what-if pad insertions
//! and validate the best suggestion against the golden solver.
//!
//! ```bash
//! cargo run --release --example pdn_fix
//! ```
//!
//! This is the workflow the paper's introduction motivates: IR mitigation
//! "demands iterative analysis", and a fast predictor turns each iteration
//! from a full solve into one inference.

use lmm_ir::{build_sample, suggest_pad_fixes, train, LmmIr, LmmIrConfig, LntConfig, TrainConfig};
use lmmir_features::check_budget;
use lmmir_pdn::{CaseKind, CaseSpec};
use lmmir_solver::{solve_ir_drop, CgConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input_size = 32;
    // 1. Train a small predictor.
    println!("training a small LMM-IR on 6 generated designs...");
    let train_set: Vec<_> = (0..6)
        .map(|i| {
            build_sample(
                &CaseSpec::new(format!("t{i}"), 32, 32, 700 + i, CaseKind::Real),
                input_size,
            )
        })
        .collect::<Result<_, _>>()?;
    let model = LmmIr::new(LmmIrConfig {
        widths: vec![8, 16],
        input_size,
        lnt: LntConfig {
            d_model: 16,
            heads: 2,
            layers: 1,
            max_points: 192,
            chunk: 96,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    });
    train(
        &model,
        &train_set,
        &TrainConfig {
            epochs: 10,
            pretrain_epochs: 1,
            oversample: (0, 1),
            ..TrainConfig::quick()
        },
    )?;

    // 2. A pad-starved design with a violation.
    let victim = CaseSpec::new("victim", 32, 32, 4242, CaseKind::Real);
    let case = victim.generate();
    let ir = solve_ir_drop(&case.netlist, CgConfig::default())?;
    println!(
        "victim design: worst golden drop {:.2} mV ({} pads)",
        ir.worst_drop() * 1e3,
        case.netlist.stats().voltage_sources
    );
    let gt = lmmir_features::ir_drop_map(
        &ir,
        &case.netlist,
        case.power.width(),
        case.power.height(),
        case.tech.dbu_per_um,
    );
    let report = check_budget(&gt, case.tech.vdd as f32, 0.005);
    println!(
        "violations at 0.5% budget: {} regions, {} px total",
        report.regions.len(),
        report.total_area
    );

    // 3. Sweep candidate pads with the predictor (fast loop).
    println!("\nsweeping a 4x4 grid of candidate pad sites with the predictor...");
    let t0 = std::time::Instant::now();
    let fixes = suggest_pad_fixes(&victim, &model, input_size, 4)?;
    println!(
        "  16 what-ifs in {:.2}s ({:.0} ms each)",
        t0.elapsed().as_secs_f64(),
        t0.elapsed().as_secs_f64() * 1000.0 / 16.0
    );
    for f in fixes.iter().take(3) {
        println!(
            "  candidate ({:>4.1}, {:>4.1}) um -> predicted worst {:.2} mV",
            f.position_um.0,
            f.position_um.1,
            f.predicted_worst * 1e3
        );
    }

    // 4. Validate the best fix with one golden solve.
    let best = &fixes[0];
    let mut fixed_spec = victim.clone();
    fixed_spec.extra_pads.push(best.position_um);
    let fixed_ir = solve_ir_drop(&fixed_spec.generate().netlist, CgConfig::default())?;
    println!(
        "\ngolden validation of the best fix: worst drop {:.2} mV -> {:.2} mV",
        ir.worst_drop() * 1e3,
        fixed_ir.worst_drop() * 1e3
    );
    Ok(())
}
