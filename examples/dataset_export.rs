//! Dataset export: generate a contest-style benchmark suite and write it to
//! disk (SPICE netlists + CSV maps + golden IR maps) for use by external
//! tools or the original PyTorch implementations.
//!
//! ```bash
//! cargo run --release --example dataset_export [out_dir]
//! ```

use lmmir_pdn::{export_suite, hidden_suite, training_suite};
use lmmir_spice::validate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench_out/dataset".to_string());
    // A miniature suite: 4 fake + 2 real training cases at 1/16 scale plus
    // the two smallest hidden cases.
    let mut specs = training_suite(4, 2, 1.0 / 16.0, 77);
    specs.extend(
        hidden_suite(1.0 / 16.0, 77)
            .into_iter()
            .filter(|s| s.width <= 40),
    );
    println!("exporting {} cases to {out}/ ...", specs.len());
    let t0 = std::time::Instant::now();
    let paths = export_suite(&specs, &out)?;
    for (spec, path) in specs.iter().zip(&paths) {
        let case = spec.generate();
        let stats = case.stats();
        let report = validate(&case.netlist);
        println!(
            "  {:<12} {:>3}x{:<3} {:>6} nodes {:>6} elements  erc: {}",
            spec.id,
            spec.width,
            spec.height,
            stats.nodes,
            case.netlist.len(),
            if report.is_clean() {
                "clean"
            } else {
                "FINDINGS"
            },
        );
        assert!(path.join("netlist.sp").exists());
    }
    println!(
        "done in {:.1}s; each case directory contains netlist.sp,\n\
         current_map.csv, ir_drop_map.csv and spec.txt",
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}
