//! Reproducibility guarantees: fixed seeds must yield bit-identical
//! benchmarks, features, models and predictions across runs.

use lmm_ir::{build_sample, train, IrPredictor, LmmIr, LmmIrConfig, LntConfig, TrainConfig};
use lmmir_features::FeatureStack;
use lmmir_pdn::{CaseKind, CaseSpec};

#[test]
fn case_generation_is_deterministic() {
    let a = CaseSpec::new("x", 24, 24, 42, CaseKind::Real).generate();
    let b = CaseSpec::new("x", 24, 24, 42, CaseKind::Real).generate();
    assert_eq!(a.netlist, b.netlist);
    assert_eq!(a.power, b.power);
    // And the golden solution is stable too.
    let ia = a.solve().unwrap();
    let ib = b.solve().unwrap();
    assert_eq!(ia.worst_drop(), ib.worst_drop());
}

#[test]
fn features_are_deterministic() {
    let case = CaseSpec::new("x", 20, 20, 1, CaseKind::Fake).generate();
    let fa = FeatureStack::extended(&case).to_tensor();
    let fb = FeatureStack::extended(&case).to_tensor();
    assert_eq!(fa.data(), fb.data());
}

#[test]
fn samples_and_predictions_are_deterministic() {
    let spec = CaseSpec::new("x", 16, 16, 13, CaseKind::Fake);
    let sa = build_sample(&spec, 16).unwrap();
    let sb = build_sample(&spec, 16).unwrap();
    assert_eq!(sa.images_extended.data(), sb.images_extended.data());
    assert_eq!(sa.target.data(), sb.target.data());
    assert_eq!(sa.cloud, sb.cloud);

    let cfg = LmmIrConfig {
        widths: vec![4, 8],
        input_size: 16,
        seed: 7,
        lnt: LntConfig {
            d_model: 8,
            heads: 2,
            layers: 1,
            max_points: 64,
            chunk: 64,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    };
    let ma = LmmIr::new(cfg.clone());
    let mb = LmmIr::new(cfg);
    let pa = ma
        .forward(&sa.images_for(6), Some(&sa.cloud))
        .unwrap()
        .to_tensor();
    let pb = mb
        .forward(&sb.images_for(6), Some(&sb.cloud))
        .unwrap()
        .to_tensor();
    assert_eq!(pa.data(), pb.data());
}

#[test]
fn training_is_deterministic_without_noise() {
    let samples = vec![
        build_sample(&CaseSpec::new("a", 16, 16, 3, CaseKind::Fake), 16).unwrap(),
        build_sample(&CaseSpec::new("b", 16, 16, 4, CaseKind::Real), 16).unwrap(),
    ];
    let cfg = LmmIrConfig {
        widths: vec![4, 8],
        input_size: 16,
        seed: 11,
        lnt: LntConfig {
            d_model: 8,
            heads: 2,
            layers: 1,
            max_points: 64,
            chunk: 64,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    };
    let tcfg = TrainConfig {
        epochs: 3,
        pretrain_epochs: 1,
        noise_std: 0.0,
        oversample: (1, 1),
        ..TrainConfig::quick()
    };
    let ma = LmmIr::new(cfg.clone());
    let mb = LmmIr::new(cfg);
    let ra = train(&ma, &samples, &tcfg).unwrap();
    let rb = train(&mb, &samples, &tcfg).unwrap();
    assert_eq!(ra.losses, rb.losses);
    assert_eq!(ra.pretrain_losses, rb.pretrain_losses);
}
