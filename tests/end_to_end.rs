//! Cross-crate integration: the complete generate → solve → featurize →
//! train → predict → score pipeline at miniature scale.

use lmm_ir::{
    average, build_sample, evaluate, f1_score, train, IrPredictor, LmmIr, LmmIrConfig, LntConfig,
    TrainConfig,
};
use lmmir_pdn::{CaseKind, CaseSpec};

fn tiny_lmm(input_size: usize, seed: u64) -> LmmIr {
    LmmIr::new(LmmIrConfig {
        widths: vec![6, 12],
        input_size,
        seed,
        lnt: LntConfig {
            d_model: 12,
            heads: 2,
            layers: 1,
            max_points: 96,
            chunk: 96,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    })
}

#[test]
fn full_pipeline_trains_and_scores() {
    let input_size = 16;
    let train_set: Vec<_> = (0..3)
        .map(|i| {
            build_sample(
                &CaseSpec::new(format!("t{i}"), 16, 16, 50 + i, CaseKind::Fake),
                input_size,
            )
            .unwrap()
        })
        .collect();
    let eval_set = vec![build_sample(
        &CaseSpec::new("h", 16, 16, 99, CaseKind::Hidden),
        input_size,
    )
    .unwrap()];

    let model = tiny_lmm(input_size, 5);
    let before = average(&evaluate(&model, &eval_set).unwrap());
    let cfg = TrainConfig {
        epochs: 12,
        pretrain_epochs: 1,
        oversample: (1, 1),
        ..TrainConfig::quick()
    };
    let report = train(&model, &train_set, &cfg).unwrap();
    assert_eq!(report.losses.len(), 12);
    assert!(
        report.final_loss() < report.losses[0],
        "loss must decrease over training"
    );
    let after = average(&evaluate(&model, &eval_set).unwrap());
    assert!(
        after.mae_e4 < before.mae_e4,
        "training must reduce MAE: {:.1} -> {:.1}",
        before.mae_e4,
        after.mae_e4
    );
    assert!(after.f1 >= 0.0 && after.f1 <= 1.0);
    assert!(after.tat > 0.0);
}

#[test]
fn multimodal_forward_consumes_cloud() {
    let input_size = 16;
    let sample = build_sample(&CaseSpec::new("c", 16, 16, 7, CaseKind::Fake), input_size).unwrap();
    let model = tiny_lmm(input_size, 9);
    let images = sample.images_for(model.input_channels());
    // With and without the netlist the model must produce different maps
    // (the fusion path is live, not a no-op).
    let with = model
        .forward(&images, Some(&sample.cloud))
        .unwrap()
        .to_tensor();
    let without = model.forward(&images, None).unwrap().to_tensor();
    assert_eq!(with.dims(), without.dims());
    let diff: f32 = with
        .data()
        .iter()
        .zip(without.data())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        diff > 1e-6,
        "netlist modality must influence the prediction"
    );
}

#[test]
fn predictions_restore_to_original_resolution() {
    // A 20x20 case adjusted to 16 (scaled) and a 12x12 case (padded) must
    // both restore to their native sizes.
    for (side, seed) in [(20usize, 1u64), (12, 2)] {
        let sample = build_sample(
            &CaseSpec::new(format!("s{side}"), side, side, seed, CaseKind::Hidden),
            16,
        )
        .unwrap();
        let model = tiny_lmm(16, 3);
        let images = sample.images_for(model.input_channels());
        let pred = model.forward(&images, Some(&sample.cloud)).unwrap();
        let restored = sample.restore_prediction(&pred.to_tensor());
        assert_eq!(restored.width(), side);
        assert_eq!(restored.height(), side);
        let f1 = f1_score(&restored, &sample.truth);
        assert!((0.0..=1.0).contains(&f1));
    }
}
