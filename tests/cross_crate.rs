//! Cross-crate consistency: SPICE round-trips preserve solves and features;
//! generated suites satisfy contract invariants end to end.

use lmmir_features::{effective_distance_map, ir_drop_map, FeatureStack};
use lmmir_pdn::{hidden_suite, training_suite, CaseKind, CaseSpec};
use lmmir_solver::{solve_ir_drop, CgConfig};
use lmmir_spice::Netlist;

#[test]
fn spice_round_trip_preserves_golden_solution() {
    let case = CaseSpec::new("rt", 20, 20, 17, CaseKind::Real).generate();
    let ir1 = solve_ir_drop(&case.netlist, CgConfig::default()).unwrap();
    // Write to the SPICE dialect and back.
    let text = case.netlist.to_spice();
    let reparsed = Netlist::parse_str(&text).unwrap();
    assert_eq!(case.netlist, reparsed);
    let ir2 = solve_ir_drop(&reparsed, CgConfig::default()).unwrap();
    assert!((ir1.worst_drop() - ir2.worst_drop()).abs() < 1e-12);
    // Feature maps from the reparsed netlist are identical too.
    let dbu = case.tech.dbu_per_um;
    let a = effective_distance_map(&case.netlist, 20, 20, dbu);
    let b = effective_distance_map(&reparsed, 20, 20, dbu);
    assert_eq!(a.data(), b.data());
}

#[test]
fn spice_file_round_trip() {
    let case = CaseSpec::new("file", 16, 16, 23, CaseKind::Fake).generate();
    let dir = std::env::temp_dir().join("lmmir_cross_crate_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pdn.sp");
    case.netlist.write_file(&path).unwrap();
    let back = Netlist::parse_file(&path).unwrap();
    assert_eq!(case.netlist, back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn hidden_suite_is_solvable_and_featurizable() {
    // Smallest two hidden cases at 1/16 scale: generate, solve, featurize.
    let specs = hidden_suite(1.0 / 16.0, 5);
    for spec in specs.iter().filter(|s| s.width <= 32) {
        let case = spec.generate();
        let ir = case
            .solve()
            .unwrap_or_else(|e| panic!("{} unsolvable: {e}", spec.id));
        assert!(ir.worst_drop() > 0.0, "{} has no drop", spec.id);
        let stack = FeatureStack::extended(&case);
        assert_eq!(stack.channels(), 6);
        let gt = ir_drop_map(
            &ir,
            &case.netlist,
            case.power.width(),
            case.power.height(),
            case.tech.dbu_per_um,
        );
        assert!((f64::from(gt.max()) - ir.worst_drop()).abs() < 1e-4);
    }
}

#[test]
fn training_suite_kinds_and_determinism() {
    let a = training_suite(5, 2, 0.0625, 9);
    let b = training_suite(5, 2, 0.0625, 9);
    assert_eq!(a, b);
    assert_eq!(a.len(), 7);
    assert!(a.iter().take(5).all(|s| s.kind == CaseKind::Fake));
    assert!(a.iter().skip(5).all(|s| s.kind == CaseKind::Real));
}

#[test]
fn worst_drop_correlates_with_effective_distance_or_current() {
    // Physics sanity at the system level: across several generated cases,
    // the hottest pixel should sit in a high-current or pad-starved region.
    for seed in 0..3 {
        let case = CaseSpec::new(format!("phys{seed}"), 24, 24, seed, CaseKind::Real).generate();
        let ir = case.solve().unwrap();
        let dbu = case.tech.dbu_per_um;
        let gt = ir_drop_map(&ir, &case.netlist, 24, 24, dbu);
        let ed = effective_distance_map(&case.netlist, 24, 24, dbu);
        let (mut bx, mut by, mut best) = (0usize, 0usize, f32::NEG_INFINITY);
        for y in 0..24 {
            for x in 0..24 {
                if gt.at(x, y) > best {
                    best = gt.at(x, y);
                    bx = x;
                    by = y;
                }
            }
        }
        let cur = lmmir_features::current_map(&case.power);
        assert!(
            ed.at(bx, by) >= ed.mean() || cur.at(bx, by) >= cur.mean(),
            "seed {seed}: hotspot at ({bx},{by}) is neither pad-starved nor hot"
        );
    }
}
