//! Checkpointing across crates: model parameters round-trip through the
//! binary tensor format and restore identical predictions.

use lmm_ir::{build_sample, IrPredictor, LmmIr, LmmIrConfig, LntConfig};
use lmmir_nn::{load_state_dict, state_dict, Module};
use lmmir_pdn::{CaseKind, CaseSpec};
use lmmir_tensor::{io, Var};

struct AsModule<'a>(&'a dyn IrPredictor);

impl Module for AsModule<'_> {
    fn forward(&self, x: &Var) -> lmmir_tensor::Result<Var> {
        Ok(x.clone())
    }
    fn parameters(&self) -> Vec<Var> {
        self.0.parameters()
    }
}

fn tiny_cfg(seed: u64) -> LmmIrConfig {
    LmmIrConfig {
        widths: vec![4, 8],
        input_size: 16,
        seed,
        lnt: LntConfig {
            d_model: 8,
            heads: 2,
            layers: 1,
            max_points: 64,
            chunk: 64,
            ff_mult: 2,
        },
        ..LmmIrConfig::quick()
    }
}

#[test]
fn checkpoint_round_trip_restores_predictions() {
    let sample = build_sample(&CaseSpec::new("c", 16, 16, 5, CaseKind::Fake), 16).unwrap();
    let original = LmmIr::new(tiny_cfg(1));
    let images = sample.images_for(6);
    let expected = original
        .forward(&images, Some(&sample.cloud))
        .unwrap()
        .to_tensor();

    // Save to disk.
    let dir = std::env::temp_dir().join("lmmir_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.lmmt");
    io::save(&path, &state_dict(&AsModule(&original))).unwrap();

    // A *differently seeded* model restores the checkpoint exactly.
    let restored = LmmIr::new(tiny_cfg(2));
    let before = restored
        .forward(&images, Some(&sample.cloud))
        .unwrap()
        .to_tensor();
    assert_ne!(before.data(), expected.data(), "different seeds differ");
    let entries = io::load(&path).unwrap();
    load_state_dict(&AsModule(&restored), &entries).unwrap();
    let after = restored
        .forward(&images, Some(&sample.cloud))
        .unwrap()
        .to_tensor();
    assert_eq!(after.data(), expected.data());
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_rejects_architecture_mismatch() {
    let small = LmmIr::new(tiny_cfg(1));
    let mut big_cfg = tiny_cfg(1);
    big_cfg.widths = vec![6, 12];
    let big = LmmIr::new(big_cfg);
    let entries = state_dict(&AsModule(&small));
    assert!(load_state_dict(&AsModule(&big), &entries).is_err());
}
